//! Run metrics: the three quantities the paper reports, per VM and
//! system-wide.

use paratick_guest::TickMode;
use paratick_sim::{Cycles, Freq, Histogram, SimDuration, SimTime};
use paratick_vmm::{ExitCounts, KvmVcpu, SystemStats};

/// Per-VM metrics for one run.
#[derive(Clone, Debug)]
pub struct VmMetrics {
    pub name: String,
    pub mode: TickMode,
    /// Exit counters summed over the VM's vCPUs.
    pub exits: ExitCounts,
    /// When the VM's workload finished (None for idle VMs / horizon runs
    /// where it never does).
    pub finished_at: Option<SimTime>,
    pub injections: u64,
    pub virtual_ticks: u64,
    pub wakeups: u64,
    pub idle_periods: u64,
    pub halted_time: SimDuration,
    /// Distribution of idle-period lengths (the paper's `T_idle`):
    /// §3.3's crossover analysis is about exactly this quantity.
    pub idle_periods_hist: Histogram,
    /// Paratick guests: idle entries where the §4.1 keep-armed heuristic
    /// reused an already-armed sooner timer (a saved VM exit each).
    pub paratick_timer_reuse: u64,
    /// Paratick guests: idle entries that actually programmed a wakeup
    /// timer.
    pub paratick_timers_programmed: u64,
}

impl VmMetrics {
    pub fn collect(
        name: &str,
        mode: TickMode,
        vcpus: &[KvmVcpu],
        finished_at: Option<SimTime>,
    ) -> Self {
        let mut m = VmMetrics {
            name: name.to_string(),
            mode,
            exits: ExitCounts::new(),
            finished_at,
            injections: 0,
            virtual_ticks: 0,
            wakeups: 0,
            idle_periods: 0,
            halted_time: SimDuration::ZERO,
            idle_periods_hist: Histogram::new(),
            paratick_timer_reuse: 0,
            paratick_timers_programmed: 0,
        };
        for v in vcpus {
            m.exits.merge(&v.stats.exits);
            m.injections += v.stats.injections;
            m.virtual_ticks += v.stats.virtual_ticks;
            m.wakeups += v.stats.wakeups;
            m.idle_periods += v.stats.idle_periods;
            m.halted_time += v.stats.halted_time;
        }
        m
    }

    /// Mean idle period — the paper's `T_idle`.
    pub fn mean_idle_period(&self) -> Option<SimDuration> {
        (self.idle_periods > 0).then(|| self.halted_time / self.idle_periods)
    }

    /// Median idle period.
    pub fn p50_idle_period(&self) -> Option<SimDuration> {
        self.idle_periods_hist.p50().map(SimDuration::from_nanos)
    }

    /// 99th-percentile idle period.
    pub fn p99_idle_period(&self) -> Option<SimDuration> {
        self.idle_periods_hist.p99().map(SimDuration::from_nanos)
    }

    /// Workload execution time (None if it never finished).
    pub fn execution_time(&self) -> Option<SimDuration> {
        self.finished_at.map(|t| t.since(SimTime::ZERO))
    }
}

/// Wall-clock cost of one engine event kind (self-profiling).
#[derive(Clone, Debug, Default)]
pub struct KindProfile {
    pub kind: String,
    /// Events of this kind dispatched (deterministic).
    pub count: u64,
    /// Wall-clock nanoseconds spent in this kind's handler. Zero unless
    /// the run had `PARATICK_PROF=1` (per-event timing costs two clock
    /// reads per event).
    pub wall_nanos: u64,
}

/// Engine self-profiling: where the *simulator's* time goes, as opposed
/// to where simulated time goes. Wall-clock fields vary run to run; the
/// counts and the queue high-water mark are deterministic.
#[derive(Clone, Debug, Default)]
pub struct EngineProfile {
    /// Wall-clock nanoseconds for the whole run (bootstrap + main loop).
    pub wall_nanos: u64,
    /// Were per-kind handlers individually timed (`PARATICK_PROF=1`)?
    pub wall_timed_kinds: bool,
    /// Most events ever pending in the queue at once.
    pub queue_depth_high_water: u64,
    /// Per-event-kind dispatch counts and (optional) wall time.
    pub per_kind: Vec<KindProfile>,
}

impl EngineProfile {
    /// Total events dispatched, summed over kinds.
    pub fn events_total(&self) -> u64 {
        self.per_kind.iter().map(|k| k.count).sum()
    }

    /// Events dispatched per wall-clock second.
    pub fn events_per_sec(&self) -> Option<f64> {
        (self.wall_nanos > 0).then(|| self.events_total() as f64 * 1e9 / self.wall_nanos as f64)
    }
}

/// Metrics for one whole simulation run.
#[derive(Clone, Debug)]
pub struct RunMetrics {
    /// Simulated end time of the run.
    pub duration: SimTime,
    /// pCPU clock used for cycle conversions.
    pub freq: Freq,
    pub per_vm: Vec<VmMetrics>,
    pub system: SystemStats,
    /// Number of DES events processed (engine diagnostics).
    pub events_dispatched: u64,
    /// Engine self-profiling (absent in pre-profile dumps).
    pub profile: EngineProfile,
    /// Invariant-audit report (absent in pre-audit dumps).
    pub audit: crate::audit::AuditReport,
    /// Fault-injection and recovery counters (all zero unless the run
    /// had a fault plan).
    pub faults: paratick_vmm::FaultStats,
}

impl RunMetrics {
    /// Total VM exits (the paper's first metric).
    pub fn total_exits(&self) -> u64 {
        self.system.exits.total()
    }

    /// Timer-related VM exits.
    pub fn timer_exits(&self) -> u64 {
        self.system.exits.timer_related()
    }

    /// Busy CPU cycles (the paper's throughput proxy, §6.1).
    pub fn busy_cycles(&self) -> Cycles {
        self.system.busy_cycles(self.freq)
    }

    /// Wall-clock execution time of the slowest VM's workload, falling
    /// back to the horizon for steady-state runs (idle VMs "finish" at
    /// t=0 and are ignored).
    pub fn execution_time(&self) -> SimDuration {
        self.per_vm
            .iter()
            .filter_map(|v| v.execution_time())
            .filter(|d| !d.is_zero())
            .max()
            .unwrap_or_else(|| self.duration.since(SimTime::ZERO))
    }

    /// Fraction of busy time that is virtualization overhead.
    pub fn overhead_fraction(&self) -> f64 {
        self.system.overhead_fraction()
    }

    pub fn vm(&self, name: &str) -> Option<&VmMetrics> {
        self.per_vm.iter().find(|v| v.name == name)
    }
}

// ---------------------------------------------------------------------
// JSON codecs (run-cache persistence, artifact files)
// ---------------------------------------------------------------------

use paratick_sim::{json, FromJson, Json, JsonError, ToJson};

impl ToJson for VmMetrics {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("mode", self.mode.to_json()),
            ("exits", self.exits.to_json()),
            ("finished_at", self.finished_at.to_json()),
            ("injections", self.injections.to_json()),
            ("virtual_ticks", self.virtual_ticks.to_json()),
            ("wakeups", self.wakeups.to_json()),
            ("idle_periods", self.idle_periods.to_json()),
            ("halted_time", self.halted_time.to_json()),
            ("idle_periods_hist", self.idle_periods_hist.to_json()),
            ("paratick_timer_reuse", self.paratick_timer_reuse.to_json()),
            (
                "paratick_timers_programmed",
                self.paratick_timers_programmed.to_json(),
            ),
        ])
    }
}

impl FromJson for VmMetrics {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(VmMetrics {
            name: json::field(v, "name")?,
            mode: json::field(v, "mode")?,
            exits: json::field(v, "exits")?,
            finished_at: json::field(v, "finished_at")?,
            injections: json::field(v, "injections")?,
            virtual_ticks: json::field(v, "virtual_ticks")?,
            wakeups: json::field(v, "wakeups")?,
            idle_periods: json::field(v, "idle_periods")?,
            halted_time: json::field(v, "halted_time")?,
            idle_periods_hist: json::field(v, "idle_periods_hist")?,
            paratick_timer_reuse: json::field(v, "paratick_timer_reuse")?,
            paratick_timers_programmed: json::field(v, "paratick_timers_programmed")?,
        })
    }
}

impl ToJson for KindProfile {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", self.kind.to_json()),
            ("count", self.count.to_json()),
            ("wall_nanos", self.wall_nanos.to_json()),
        ])
    }
}

impl FromJson for KindProfile {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(KindProfile {
            kind: json::field(v, "kind")?,
            count: json::field(v, "count")?,
            wall_nanos: json::field(v, "wall_nanos")?,
        })
    }
}

impl ToJson for EngineProfile {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("wall_nanos", self.wall_nanos.to_json()),
            ("wall_timed_kinds", self.wall_timed_kinds.to_json()),
            (
                "queue_depth_high_water",
                self.queue_depth_high_water.to_json(),
            ),
            ("per_kind", self.per_kind.to_json()),
        ])
    }
}

impl FromJson for EngineProfile {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(EngineProfile {
            wall_nanos: json::field(v, "wall_nanos")?,
            wall_timed_kinds: json::field(v, "wall_timed_kinds")?,
            queue_depth_high_water: json::field(v, "queue_depth_high_water")?,
            per_kind: json::field(v, "per_kind")?,
        })
    }
}

impl ToJson for RunMetrics {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("duration", self.duration.to_json()),
            ("freq", self.freq.to_json()),
            ("per_vm", self.per_vm.to_json()),
            ("system", self.system.to_json()),
            ("events_dispatched", self.events_dispatched.to_json()),
            ("profile", self.profile.to_json()),
            ("audit", self.audit.to_json()),
            ("faults", self.faults.to_json()),
        ])
    }
}

impl FromJson for RunMetrics {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(RunMetrics {
            duration: json::field(v, "duration")?,
            freq: json::field(v, "freq")?,
            per_vm: json::field(v, "per_vm")?,
            system: json::field(v, "system")?,
            events_dispatched: json::field(v, "events_dispatched")?,
            // Tolerate pre-profile/pre-audit dumps, like the serde
            // `#[serde(default)]` attributes did.
            profile: match v.opt_field("profile") {
                Some(p) => EngineProfile::from_json(p)?,
                None => EngineProfile::default(),
            },
            audit: match v.opt_field("audit") {
                Some(a) => crate::audit::AuditReport::from_json(a)?,
                None => Default::default(),
            },
            faults: match v.opt_field("faults") {
                Some(f) => paratick_vmm::FaultStats::from_json(f)?,
                None => Default::default(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paratick_sim::SimTime;
    use paratick_vmm::{PcpuId, VcpuId};

    #[test]
    fn vm_metrics_aggregation() {
        let freq = Freq::ghz(2);
        let mut a = KvmVcpu::new(VcpuId::new(0, 0), PcpuId(0), freq, SimTime::ZERO);
        let mut b = KvmVcpu::new(VcpuId::new(0, 1), PcpuId(1), freq, SimTime::ZERO);
        a.set_running(SimTime::ZERO).unwrap();
        a.record_exit(paratick_vmm::ExitReason::Hlt);
        a.record_injection(true);
        b.set_running(SimTime::ZERO).unwrap();
        b.set_halted(SimTime::from_millis(1)).unwrap();
        b.wake(SimTime::from_millis(5)).unwrap();
        let m = VmMetrics::collect(
            "test",
            TickMode::Paratick,
            &[a, b],
            Some(SimTime::from_millis(10)),
        );
        assert_eq!(m.exits.total(), 1);
        assert_eq!(m.virtual_ticks, 1);
        assert_eq!(m.wakeups, 1);
        assert_eq!(m.mean_idle_period(), Some(SimDuration::from_millis(4)));
        assert_eq!(m.execution_time(), Some(SimDuration::from_millis(10)));
    }

    #[test]
    fn run_metrics_fallback_duration() {
        let rm = RunMetrics {
            duration: SimTime::from_secs(10),
            freq: Freq::ghz(2),
            per_vm: vec![],
            system: SystemStats::default(),
            events_dispatched: 0,
            profile: EngineProfile::default(),
            audit: Default::default(),
            faults: Default::default(),
        };
        assert_eq!(rm.execution_time(), SimDuration::from_secs(10));
        assert_eq!(rm.total_exits(), 0);
    }

    #[test]
    fn engine_profile_rates() {
        let p = EngineProfile {
            wall_nanos: 2_000_000_000,
            wall_timed_kinds: false,
            queue_depth_high_water: 5,
            per_kind: vec![
                KindProfile {
                    kind: "a".into(),
                    count: 300,
                    wall_nanos: 0,
                },
                KindProfile {
                    kind: "b".into(),
                    count: 700,
                    wall_nanos: 0,
                },
            ],
        };
        assert_eq!(p.events_total(), 1_000);
        assert_eq!(p.events_per_sec(), Some(500.0));
        assert_eq!(EngineProfile::default().events_per_sec(), None);
    }
}
