//! Paired vanilla-vs-paratick experiments.
//!
//! The paper's protocol (§6): run each configuration repeatedly "until
//! their results stabilized. The displayed results are therefore the
//! average of 3 to 15 iterations." An [`Experiment`] does the same: it
//! re-runs a scenario builder under both tick modes with varied seeds
//! until the coefficient of variation of the headline metrics drops
//! under a threshold (or the iteration cap is hit), then reports mean
//! deltas for the three §6 metrics.

use crate::config::Scenario;
use crate::metrics::RunMetrics;
use paratick_guest::TickMode;
use paratick_sim::stats::Summary;
use paratick_vmm::accounting::delta;

/// Scenario factory: mode + iteration seed → scenario.
pub type ScenarioBuilder = Box<dyn Fn(TickMode, u64) -> Scenario + Send + Sync>;

/// A paired experiment definition.
pub struct Experiment {
    pub name: String,
    pub baseline: TickMode,
    pub treatment: TickMode,
    pub min_iterations: u32,
    pub max_iterations: u32,
    /// Stop early once every metric's CV is below this.
    pub cv_target: f64,
    builder: ScenarioBuilder,
}

/// Summary of one mode's repeated runs.
#[derive(Clone, Debug, Default)]
pub struct ModeSummary {
    pub exits: Summary,
    pub timer_exits: Summary,
    pub busy_cycles: Summary,
    pub exec_time_secs: Summary,
    pub iterations: u32,
    /// Engine self-profiling across the iterations: DES events
    /// dispatched per run (absent in pre-profile dumps).
    pub events_dispatched: Summary,
    /// Event-queue depth high-water mark per run.
    pub queue_depth_hwm: Summary,
    /// Simulator speed: DES events per wall-clock second
    /// (non-deterministic; excluded from stability checks).
    pub events_per_wall_sec: Summary,
}

impl ModeSummary {
    fn record(&mut self, m: &RunMetrics) {
        self.exits.record(m.total_exits() as f64);
        self.timer_exits.record(m.timer_exits() as f64);
        self.busy_cycles.record(m.busy_cycles().get() as f64);
        self.exec_time_secs.record(m.execution_time().as_secs_f64());
        self.iterations += 1;
        self.events_dispatched.record(m.events_dispatched as f64);
        self.queue_depth_hwm
            .record(m.profile.queue_depth_high_water as f64);
        if let Some(eps) = m.profile.events_per_sec() {
            self.events_per_wall_sec.record(eps);
        }
    }

    fn stable(&self, cv_target: f64) -> bool {
        [&self.exits, &self.busy_cycles, &self.exec_time_secs]
            .iter()
            .all(|s| {
                let cv = s.cv();
                cv.is_nan() || cv < cv_target
            })
    }
}

/// The outcome of a paired experiment: the three §6 metrics as
/// percentage deltas (treatment vs baseline).
#[derive(Clone, Debug)]
pub struct Comparison {
    pub name: String,
    pub baseline: ModeSummary,
    pub treatment: ModeSummary,
    /// Percent change in total VM exits (negative = fewer).
    pub exits_pct: f64,
    /// Percent change in timer-related VM exits.
    pub timer_exits_pct: f64,
    /// Throughput improvement in percent: cycles freed relative to the
    /// treatment's consumption (positive = better).
    pub throughput_pct: f64,
    /// Percent change in execution time (negative = faster).
    pub exec_time_pct: f64,
}

impl Experiment {
    pub fn new(
        name: impl Into<String>,
        builder: impl Fn(TickMode, u64) -> Scenario + Send + Sync + 'static,
    ) -> Self {
        Experiment {
            name: name.into(),
            baseline: TickMode::DynticksIdle,
            treatment: TickMode::Paratick,
            min_iterations: 3,
            max_iterations: 15,
            cv_target: 0.05,
            builder: Box::new(builder),
        }
    }

    pub fn modes(mut self, baseline: TickMode, treatment: TickMode) -> Self {
        self.baseline = baseline;
        self.treatment = treatment;
        self
    }

    pub fn iterations(mut self, min: u32, max: u32) -> Self {
        assert!(min >= 1 && max >= min);
        self.min_iterations = min;
        self.max_iterations = max;
        self
    }

    /// Materialize the scenario this experiment would simulate for a
    /// given mode and seed. The replication harness uses this to re-run
    /// a cell under externally derived seed streams without owning the
    /// builder.
    pub fn scenario(&self, mode: TickMode, seed: u64) -> Scenario {
        (self.builder)(mode, seed)
    }

    /// Run the paired experiment. Fails on the first simulation error
    /// (bad configuration, deadlock, invariant breach). Simulations go
    /// through the content-addressed run cache ([`crate::cache`]): a
    /// warm repeat of the same experiment deserializes every iteration
    /// instead of simulating it.
    pub fn run(&self) -> Result<Comparison, paratick_vmm::SimError> {
        self.run_detailed().map(|(c, _)| c)
    }

    /// [`run`](Experiment::run), plus a tally of how this experiment's
    /// own simulations were satisfied by the run cache (the process-wide
    /// [`CacheStats::snapshot`] cannot attribute traffic to one cell
    /// when sweep workers run cells concurrently).
    pub fn run_detailed(
        &self,
    ) -> Result<(Comparison, crate::cache::CacheStats), paratick_vmm::SimError> {
        let mut base = ModeSummary::default();
        let mut treat = ModeSummary::default();
        let mut cache = crate::cache::CacheStats::default();
        let mut run = |scenario| -> Result<RunMetrics, paratick_vmm::SimError> {
            let (m, outcome) = crate::cache::run_cached_outcome(scenario)?;
            cache.record(outcome);
            Ok(m)
        };
        for i in 0..self.max_iterations {
            let seed = 0xE1E7_0000 + u64::from(i);
            base.record(&run((self.builder)(self.baseline, seed))?);
            treat.record(&run((self.builder)(self.treatment, seed))?);
            if i + 1 >= self.min_iterations
                && base.stable(self.cv_target)
                && treat.stable(self.cv_target)
            {
                break;
            }
        }
        Ok((Comparison::from_summaries(&self.name, base, treat), cache))
    }
}

impl Comparison {
    pub fn from_summaries(name: &str, baseline: ModeSummary, treatment: ModeSummary) -> Self {
        let exits_pct = delta::percent(baseline.exits.mean(), treatment.exits.mean());
        let timer_exits_pct =
            delta::percent(baseline.timer_exits.mean(), treatment.timer_exits.mean());
        let throughput_pct = delta::throughput_gain(
            baseline.busy_cycles.mean(),
            treatment.busy_cycles.mean(),
        );
        let exec_time_pct = delta::percent(
            baseline.exec_time_secs.mean(),
            treatment.exec_time_secs.mean(),
        );
        Comparison {
            name: name.to_string(),
            baseline,
            treatment,
            exits_pct,
            timer_exits_pct,
            throughput_pct,
            exec_time_pct,
        }
    }
}

// ---------------------------------------------------------------------
// JSON codecs (artifact files; byte-stable across identical runs)
// ---------------------------------------------------------------------

use paratick_sim::{json, FromJson, Json, JsonError, ToJson};

impl ToJson for ModeSummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("exits", self.exits.to_json()),
            ("timer_exits", self.timer_exits.to_json()),
            ("busy_cycles", self.busy_cycles.to_json()),
            ("exec_time_secs", self.exec_time_secs.to_json()),
            ("iterations", self.iterations.to_json()),
            ("events_dispatched", self.events_dispatched.to_json()),
            ("queue_depth_hwm", self.queue_depth_hwm.to_json()),
            ("events_per_wall_sec", self.events_per_wall_sec.to_json()),
        ])
    }
}

impl FromJson for ModeSummary {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ModeSummary {
            exits: json::field(v, "exits")?,
            timer_exits: json::field(v, "timer_exits")?,
            busy_cycles: json::field(v, "busy_cycles")?,
            exec_time_secs: json::field(v, "exec_time_secs")?,
            iterations: json::field(v, "iterations")?,
            events_dispatched: json::field(v, "events_dispatched")?,
            queue_depth_hwm: json::field(v, "queue_depth_hwm")?,
            events_per_wall_sec: json::field(v, "events_per_wall_sec")?,
        })
    }
}

impl ToJson for Comparison {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("baseline", self.baseline.to_json()),
            ("treatment", self.treatment.to_json()),
            ("exits_pct", self.exits_pct.to_json()),
            ("timer_exits_pct", self.timer_exits_pct.to_json()),
            ("throughput_pct", self.throughput_pct.to_json()),
            ("exec_time_pct", self.exec_time_pct.to_json()),
        ])
    }
}

impl FromJson for Comparison {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Comparison {
            name: json::field(v, "name")?,
            baseline: json::field(v, "baseline")?,
            treatment: json::field(v, "treatment")?,
            exits_pct: json::field(v, "exits_pct")?,
            timer_exits_pct: json::field(v, "timer_exits_pct")?,
            throughput_pct: json::field(v, "throughput_pct")?,
            exec_time_pct: json::field(v, "exec_time_pct")?,
        })
    }
}

/// Average a set of comparisons (the paper's "aggregated results"
/// tables average the per-benchmark relative improvements).
pub fn aggregate(name: &str, comparisons: &[Comparison]) -> Comparison {
    assert!(!comparisons.is_empty(), "aggregate of nothing");
    let mean = |f: fn(&Comparison) -> f64| {
        comparisons.iter().map(f).sum::<f64>() / comparisons.len() as f64
    };
    Comparison {
        name: name.to_string(),
        baseline: ModeSummary::default(),
        treatment: ModeSummary::default(),
        exits_pct: mean(|c| c.exits_pct),
        timer_exits_pct: mean(|c| c.timer_exits_pct),
        throughput_pct: mean(|c| c.throughput_pct),
        exec_time_pct: mean(|c| c.exec_time_pct),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HostConfig, VmConfig};
    use paratick_workloads::parsec;

    #[test]
    fn experiment_runs_and_reduces_exits() {
        let profile = *parsec::profile("swaptions").unwrap();
        let exp = Experiment::new("swaptions-seq", move |mode, seed| {
            Scenario::new(HostConfig::small(2))
                .vm(
                    VmConfig::with_vcpus(1).mode(mode),
                    parsec::workload(&profile, 1, 0.02),
                )
                .seed(seed)
        })
        .iterations(2, 3);
        let c = exp.run().unwrap();
        assert!(c.baseline.iterations >= 2);
        assert!(
            c.exits_pct < 0.0,
            "paratick must reduce exits, got {:+.1}%",
            c.exits_pct
        );
        assert!(
            c.timer_exits_pct < -50.0,
            "timer exits should drop sharply, got {:+.1}%",
            c.timer_exits_pct
        );
    }

    #[test]
    fn aggregate_averages() {
        let mk = |e: f64| Comparison {
            name: "x".into(),
            baseline: ModeSummary::default(),
            treatment: ModeSummary::default(),
            exits_pct: e,
            timer_exits_pct: e,
            throughput_pct: 2.0 * e.abs(),
            exec_time_pct: e / 2.0,
        };
        let agg = aggregate("avg", &[mk(-40.0), mk(-60.0)]);
        assert_eq!(agg.exits_pct, -50.0);
        assert_eq!(agg.throughput_pct, 100.0);
        assert_eq!(agg.exec_time_pct, -25.0);
    }

    #[test]
    #[should_panic(expected = "aggregate of nothing")]
    fn aggregate_empty_panics() {
        aggregate("x", &[]);
    }
}
