//! Scenario configuration: host shape, VM shapes, workloads.
//!
//! Defaults mirror the paper's test system (§6): a 4-socket NUMA server
//! with 20 CPUs per socket, Linux/KVM with PLE and halt polling
//! disabled, guests at HZ=250 in dynticks-idle mode, VMs pinned to
//! sockets (small VM on one socket, medium across two, large across
//! four).

use paratick_guest::TickMode;
use paratick_hw::DeviceKind;
use paratick_sim::{Freq, SimDuration, SimTime, StableHash, StableHasher};
use paratick_vmm::{CostModel, FaultConfig};
use paratick_workloads::VmWorkload;
use std::path::PathBuf;
use std::sync::OnceLock;

/// Host (hypervisor machine) configuration.
#[derive(Clone, Debug)]
pub struct HostConfig {
    /// NUMA socket count.
    pub sockets: u32,
    /// Physical CPUs per socket.
    pub pcpus_per_socket: u32,
    /// Host scheduler tick frequency.
    pub host_hz: Freq,
    /// Host scheduler time slice for contended pCPUs.
    pub slice: SimDuration,
    /// KVM adaptive halt polling (paper: disabled).
    pub halt_poll: bool,
    /// Pause-loop exiting (paper: disabled).
    pub ple: bool,
    /// Host-side paratick support compiled in.
    pub paratick_host: bool,
    /// §4.1 tick-rate adaptation: when the host tick rate cannot carry a
    /// guest's declared rate, drive injections with a preemption-timer
    /// cadence at the guest period. The paper's artifact leaves this as
    /// future work (§5.1); we implement it (disable to reproduce the
    /// paper's exact behaviour).
    pub paratick_rate_adapt: bool,
    /// APIC virtualization (APICv): when false (the paper's machine
    /// class), every guest EOI write takes a VM exit.
    pub apicv: bool,
    /// The virtualization cost model (includes the pCPU frequency).
    pub cost: CostModel,
    /// Deterministic fault-injection plan (default: no faults). The
    /// `PARATICK_FAULTS` environment variable overrides this at
    /// `Engine::new` time.
    pub faults: FaultConfig,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            sockets: 4,
            pcpus_per_socket: 20,
            host_hz: Freq::hz(250),
            slice: SimDuration::from_millis(3),
            halt_poll: false,
            ple: false,
            paratick_host: true,
            paratick_rate_adapt: true,
            apicv: false,
            cost: CostModel::default(),
            faults: FaultConfig::off(),
        }
    }
}

impl HostConfig {
    pub fn num_pcpus(&self) -> u32 {
        self.sockets * self.pcpus_per_socket
    }

    /// A small host for fast tests: one socket, `n` pCPUs.
    pub fn small(n: u32) -> Self {
        HostConfig {
            sockets: 1,
            pcpus_per_socket: n,
            ..Default::default()
        }
    }

    pub fn socket_of(&self, pcpu: u32) -> u32 {
        pcpu / self.pcpus_per_socket
    }
}

/// One VM's configuration.
#[derive(Clone, Debug)]
pub struct VmConfig {
    pub vcpus: u32,
    pub tick_mode: TickMode,
    pub guest_hz: Freq,
    /// Block device backing this VM's virtual disk.
    pub device: DeviceKind,
    /// Sockets this VM's vCPUs are pinned across (paper §6.2: small=1,
    /// medium=2, large=4). `None` = spread over the whole host.
    pub socket_span: Option<u32>,
    /// Ablation: paratick disables its wakeup timer at idle exit instead
    /// of leaving it armed (the paper's §4.1 heuristic argues against
    /// this; the ablation bench measures the argument).
    pub paratick_naive_idle_exit: bool,
    /// Boot realism (§5.2.1): high-resolution timers come up this long
    /// after boot; until then every CPU runs a classic periodic tick,
    /// and only at the switch does the configured mode take over (with
    /// paratick's declaration hypercall). Zero = steady-state runs.
    pub hres_boot_delay: SimDuration,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            vcpus: 1,
            tick_mode: TickMode::DynticksIdle,
            guest_hz: Freq::hz(250),
            // The paper's VM disks are qcow2 files on a shared disk;
            // repeatedly-read data lands in the host page cache.
            device: DeviceKind::VirtioCached,
            socket_span: None,
            paratick_naive_idle_exit: false,
            hres_boot_delay: SimDuration::ZERO,
        }
    }
}

impl VmConfig {
    pub fn with_vcpus(vcpus: u32) -> Self {
        VmConfig {
            vcpus,
            ..Default::default()
        }
    }

    pub fn mode(mut self, mode: TickMode) -> Self {
        self.tick_mode = mode;
        self
    }

    pub fn spanning(mut self, sockets: u32) -> Self {
        self.socket_span = Some(sockets);
        self
    }

    /// The paper's "small" VM: 4 vCPUs on one socket.
    pub fn small_vm() -> Self {
        Self::with_vcpus(4).spanning(1)
    }

    /// The paper's "medium" VM: 16 vCPUs across two sockets.
    pub fn medium_vm() -> Self {
        Self::with_vcpus(16).spanning(2)
    }

    /// The paper's "large" VM: 64 vCPUs across four sockets.
    pub fn large_vm() -> Self {
        Self::with_vcpus(64).spanning(4)
    }
}

/// When the simulation stops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunUntil {
    /// Every VM's workload has finished (execution-time experiments).
    AllWorkloadsDone,
    /// A fixed horizon (idle / steady-state experiments).
    Time(SimTime),
}

/// A complete simulation scenario.
#[derive(Debug)]
pub struct Scenario {
    pub host: HostConfig,
    pub vms: Vec<(VmConfig, VmWorkload)>,
    pub seed: u64,
    pub run_until: RunUntil,
}

impl Scenario {
    pub fn new(host: HostConfig) -> Self {
        Scenario {
            host,
            vms: Vec::new(),
            seed: 0x9a7a71c4,
            run_until: RunUntil::AllWorkloadsDone,
        }
    }

    pub fn vm(mut self, cfg: VmConfig, workload: VmWorkload) -> Self {
        self.vms.push((cfg, workload));
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn until(mut self, until: RunUntil) -> Self {
        self.run_until = until;
        self
    }

    /// Attach a fault-injection plan to the host.
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.host.faults = faults;
        self
    }

    /// Switch every VM to the given tick mode (the vanilla-vs-paratick
    /// comparison re-runs the same scenario with a different mode).
    pub fn with_mode(mut self, mode: TickMode) -> Self {
        for (cfg, _) in &mut self.vms {
            cfg.tick_mode = mode;
        }
        self
    }

    /// Compute the pCPU affinity for vCPU `v` of the `vm_index`-th VM:
    /// round-robin across the pCPUs of the VM's socket span, with VMs
    /// offset so co-resident VMs interleave instead of stacking.
    pub fn affinity(&self, vm_index: usize, vcpu: u32) -> u32 {
        let (cfg, _) = &self.vms[vm_index];
        let span = cfg
            .socket_span
            .unwrap_or(self.host.sockets)
            .min(self.host.sockets);
        let pool = span * self.host.pcpus_per_socket;
        let base = (vm_index as u32 * cfg.vcpus) % pool;
        (base + vcpu) % pool
    }
}

// ---------------------------------------------------------------------
// Content hashing (run-cache keys)
// ---------------------------------------------------------------------

impl StableHash for HostConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.sockets as u64);
        h.write_u64(self.pcpus_per_socket as u64);
        self.host_hz.stable_hash(h);
        self.slice.stable_hash(h);
        h.write_bool(self.halt_poll);
        h.write_bool(self.ple);
        h.write_bool(self.paratick_host);
        h.write_bool(self.paratick_rate_adapt);
        h.write_bool(self.apicv);
        self.cost.stable_hash(h);
        self.faults.stable_hash(h);
    }
}

impl StableHash for VmConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.vcpus as u64);
        self.tick_mode.stable_hash(h);
        self.guest_hz.stable_hash(h);
        self.device.stable_hash(h);
        self.socket_span.stable_hash(h);
        h.write_bool(self.paratick_naive_idle_exit);
        self.hres_boot_delay.stable_hash(h);
    }
}

impl StableHash for RunUntil {
    fn stable_hash(&self, h: &mut StableHasher) {
        match *self {
            RunUntil::AllWorkloadsDone => h.write_discriminant(0),
            RunUntil::Time(t) => {
                h.write_discriminant(1);
                t.stable_hash(h);
            }
        }
    }
}

impl StableHash for Scenario {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.host.stable_hash(h);
        h.write_u64(self.seed);
        self.run_until.stable_hash(h);
        h.write_len(self.vms.len());
        for (cfg, workload) in &self.vms {
            cfg.stable_hash(h);
            workload.stable_hash(h);
        }
    }
}

// ---------------------------------------------------------------------
// Typed environment configuration
// ---------------------------------------------------------------------

/// A malformed `PARATICK_*` environment variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnvError {
    pub var: &'static str,
    pub value: String,
    pub reason: String,
}

impl std::fmt::Display for EnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}={:?}: {}", self.var, self.value, self.reason)
    }
}

impl std::error::Error for EnvError {}

/// All `PARATICK_*` knobs, parsed once per process.
///
/// Before this type existed every consumer parsed its own variables ad
/// hoc (`engine.rs` read `PARATICK_FAULTS`, `obs.rs` read the sink
/// paths, the bench crate read the scale knobs, `inspect` read the
/// calibration overrides). [`EnvConfig::get`] is now the single parse
/// point: malformed values produce one typed [`EnvError`] instead of a
/// scatter of silently-ignored `parse().ok()`s, and unrecognized
/// `PARATICK_*` variables earn a one-time stderr warning (catching the
/// classic `PARATICK_SCLAE=1` typo that silently runs the default).
#[derive(Clone, Debug, PartialEq)]
pub struct EnvConfig {
    /// `PARATICK_SCALE`: workload scale factor (default 0.25).
    pub scale: f64,
    /// `PARATICK_ITERS`: iteration cap per configuration (default 3).
    pub iters: u32,
    /// `PARATICK_JSON`: directory for machine-readable artifacts.
    pub json_dir: Option<PathBuf>,
    /// `PARATICK_TRACE`: Perfetto/Chrome-trace timeline output path.
    pub trace: Option<PathBuf>,
    /// `PARATICK_TIMESERIES`: windowed-counters output path.
    pub timeseries: Option<PathBuf>,
    /// `PARATICK_TIMESERIES_WINDOW_US`: sampling window (default 1000).
    pub timeseries_window_us: u64,
    /// `PARATICK_PROF`: per-event-kind wall-clock self-profiling.
    pub prof: bool,
    /// `PARATICK_FAULTS`: fault campaign overriding `HostConfig::faults`.
    pub faults: Option<FaultConfig>,
    /// `PARATICK_NO_RCU`: disable background RCU-callback generation
    /// (calibration probes).
    pub no_rcu: bool,
    /// `PARATICK_CACHE`: run cache on/off (default on; `0`/`off`/`false`
    /// disables).
    pub cache: bool,
    /// `PARATICK_CACHE_DIR`: cache directory override.
    pub cache_dir: Option<PathBuf>,
    /// `PARATICK_JOBS`: sweep-scheduler worker count override.
    pub jobs: Option<usize>,
    /// `PARATICK_INDIRECT_MULT`: calibration multiplier on the indirect
    /// exit-cost table (`inspect` only).
    pub indirect_mult: Option<f64>,
    /// `PARATICK_WAKEUP_US`: calibration override of the wakeup latency
    /// (`inspect` only).
    pub wakeup_us: Option<u64>,
    /// `PARATICK_PROP_SEED`: base seed for the propcheck property-test
    /// framework (hex with `0x` prefix or decimal). Read directly by
    /// `paratick_sim::propcheck` — `paratick-sim` sits below this crate
    /// — but declared here so the loader recognizes and documents it.
    pub prop_seed: Option<u64>,
    /// `PARATICK_PROP_CASES`: propcheck case budget per property
    /// (overrides each suite's compiled-in `Config::cases`).
    pub prop_cases: Option<u32>,
}

impl Default for EnvConfig {
    /// The compiled-in defaults — what an empty environment yields.
    fn default() -> Self {
        EnvConfig {
            scale: 0.25,
            iters: 3,
            json_dir: None,
            trace: None,
            timeseries: None,
            timeseries_window_us: 1_000,
            prof: false,
            faults: None,
            no_rcu: false,
            cache: true,
            cache_dir: None,
            jobs: None,
            indirect_mult: None,
            wakeup_us: None,
            prop_seed: None,
            prop_cases: None,
        }
    }
}

impl EnvConfig {
    /// Every variable the loader understands. `PARATICK_OBS_CHILD` is a
    /// subprocess marker used by the integration tests; it carries no
    /// configuration but must not trip the unrecognized-variable warning.
    pub const KNOWN_VARS: [&'static str; 17] = [
        "PARATICK_SCALE",
        "PARATICK_ITERS",
        "PARATICK_JSON",
        "PARATICK_TRACE",
        "PARATICK_TIMESERIES",
        "PARATICK_TIMESERIES_WINDOW_US",
        "PARATICK_PROF",
        "PARATICK_FAULTS",
        "PARATICK_NO_RCU",
        "PARATICK_CACHE",
        "PARATICK_CACHE_DIR",
        "PARATICK_JOBS",
        "PARATICK_INDIRECT_MULT",
        "PARATICK_WAKEUP_US",
        "PARATICK_PROP_SEED",
        "PARATICK_PROP_CASES",
        "PARATICK_OBS_CHILD",
    ];

    /// Parse the process environment (no caching — see [`Self::get`]).
    pub fn from_env() -> Result<EnvConfig, EnvError> {
        Self::from_lookup(|var| std::env::var(var).ok())
    }

    /// Parse from an arbitrary lookup function (tests inject maps here;
    /// real callers go through [`Self::from_env`]).
    pub fn from_lookup(get: impl Fn(&str) -> Option<String>) -> Result<EnvConfig, EnvError> {
        let mut cfg = EnvConfig::default();
        if let Some(v) = get("PARATICK_SCALE") {
            cfg.scale = parse_num("PARATICK_SCALE", &v)?;
            if !cfg.scale.is_finite() || cfg.scale <= 0.0 {
                return Err(invalid("PARATICK_SCALE", &v, "must be a positive finite number"));
            }
        }
        if let Some(v) = get("PARATICK_ITERS") {
            cfg.iters = parse_num("PARATICK_ITERS", &v)?;
            if cfg.iters == 0 {
                return Err(invalid("PARATICK_ITERS", &v, "must be at least 1"));
            }
        }
        cfg.json_dir = get("PARATICK_JSON").map(PathBuf::from);
        cfg.trace = get("PARATICK_TRACE").map(PathBuf::from);
        cfg.timeseries = get("PARATICK_TIMESERIES").map(PathBuf::from);
        if let Some(v) = get("PARATICK_TIMESERIES_WINDOW_US") {
            cfg.timeseries_window_us = parse_num("PARATICK_TIMESERIES_WINDOW_US", &v)?;
            if cfg.timeseries_window_us == 0 {
                return Err(invalid(
                    "PARATICK_TIMESERIES_WINDOW_US",
                    &v,
                    "must be at least 1",
                ));
            }
        }
        cfg.prof = get("PARATICK_PROF").is_some_and(|v| flag_on(&v));
        if let Some(spec) = get("PARATICK_FAULTS") {
            match FaultConfig::from_spec(&spec) {
                Ok(f) => cfg.faults = Some(f),
                Err(e) => return Err(invalid("PARATICK_FAULTS", &spec, &e)),
            }
        }
        cfg.no_rcu = get("PARATICK_NO_RCU").is_some_and(|v| flag_on(&v));
        if let Some(v) = get("PARATICK_CACHE") {
            cfg.cache = flag_on(&v);
        }
        cfg.cache_dir = get("PARATICK_CACHE_DIR").map(PathBuf::from);
        if let Some(v) = get("PARATICK_JOBS") {
            let jobs: usize = parse_num("PARATICK_JOBS", &v)?;
            if jobs == 0 {
                return Err(invalid("PARATICK_JOBS", &v, "must be at least 1"));
            }
            cfg.jobs = Some(jobs);
        }
        if let Some(v) = get("PARATICK_INDIRECT_MULT") {
            let m: f64 = parse_num("PARATICK_INDIRECT_MULT", &v)?;
            if !m.is_finite() || m <= 0.0 {
                return Err(invalid(
                    "PARATICK_INDIRECT_MULT",
                    &v,
                    "must be a positive finite number",
                ));
            }
            cfg.indirect_mult = Some(m);
        }
        if let Some(v) = get("PARATICK_WAKEUP_US") {
            cfg.wakeup_us = Some(parse_num("PARATICK_WAKEUP_US", &v)?);
        }
        if let Some(v) = get("PARATICK_PROP_SEED") {
            // Same convention as propcheck's own parser: `0x`-prefixed
            // hex (what failure reports print) or plain decimal.
            let t = v.trim();
            let parsed = match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => t.parse().ok(),
            };
            match parsed {
                Some(s) => cfg.prop_seed = Some(s),
                None => return Err(invalid("PARATICK_PROP_SEED", &v, "not a u64 (decimal or 0x-hex)")),
            }
        }
        if let Some(v) = get("PARATICK_PROP_CASES") {
            let cases: u32 = parse_num("PARATICK_PROP_CASES", &v)?;
            if cases == 0 {
                return Err(invalid("PARATICK_PROP_CASES", &v, "must be at least 1"));
            }
            cfg.prop_cases = Some(cases);
        }
        Ok(cfg)
    }

    /// The process-wide configuration, parsed exactly once. A malformed
    /// variable is sticky: every caller sees the same [`EnvError`].
    pub fn get() -> Result<&'static EnvConfig, &'static EnvError> {
        static CONFIG: OnceLock<Result<EnvConfig, EnvError>> = OnceLock::new();
        CONFIG
            .get_or_init(|| {
                warn_unrecognized();
                EnvConfig::from_env()
            })
            .as_ref()
    }

    /// [`Self::get`], mapping a malformed variable to the configuration
    /// exit code (2) — what a CLI entry point wants.
    pub fn get_or_exit() -> &'static EnvConfig {
        EnvConfig::get().unwrap_or_else(|e| {
            eprintln!("error: bad environment: {e}");
            std::process::exit(2);
        })
    }
}

fn invalid(var: &'static str, value: &str, reason: &str) -> EnvError {
    EnvError {
        var,
        value: value.to_string(),
        reason: reason.to_string(),
    }
}

fn parse_num<T: std::str::FromStr>(var: &'static str, value: &str) -> Result<T, EnvError> {
    value
        .trim()
        .parse()
        .map_err(|_| invalid(var, value, &format!("not a valid {}", std::any::type_name::<T>())))
}

/// Flag convention, uniform across every boolean knob: set and not one
/// of `0` / `off` / `false` (case-insensitive) means on.
fn flag_on(v: &str) -> bool {
    !matches!(
        v.trim().to_ascii_lowercase().as_str(),
        "0" | "off" | "false"
    )
}

/// Warn (once, via [`EnvConfig::get`]) about `PARATICK_*` variables the
/// loader does not understand — typos otherwise silently run defaults.
fn warn_unrecognized() {
    for (key, _) in std::env::vars() {
        if key.starts_with("PARATICK_") && !EnvConfig::KNOWN_VARS.contains(&key.as_str()) {
            eprintln!("warning: unrecognized environment variable {key} (ignored)");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_host_matches_paper() {
        let h = HostConfig::default();
        assert_eq!(h.num_pcpus(), 80);
        assert_eq!(h.host_hz.as_hz(), 250);
        assert!(!h.halt_poll, "paper disables halt polling");
        assert!(!h.ple, "paper disables PLE");
        assert_eq!(h.socket_of(0), 0);
        assert_eq!(h.socket_of(19), 0);
        assert_eq!(h.socket_of(20), 1);
        assert_eq!(h.socket_of(79), 3);
    }

    #[test]
    fn paper_vm_shapes() {
        assert_eq!(VmConfig::small_vm().vcpus, 4);
        assert_eq!(VmConfig::small_vm().socket_span, Some(1));
        assert_eq!(VmConfig::medium_vm().vcpus, 16);
        assert_eq!(VmConfig::medium_vm().socket_span, Some(2));
        assert_eq!(VmConfig::large_vm().vcpus, 64);
        assert_eq!(VmConfig::large_vm().socket_span, Some(4));
    }

    #[test]
    fn affinity_spreads_within_span() {
        let s = Scenario::new(HostConfig::default()).vm(
            VmConfig::small_vm(),
            VmWorkload::idle("x"),
        );
        // 4 vCPUs on socket 0 (pcpus 0..20).
        let cpus: Vec<u32> = (0..4).map(|v| s.affinity(0, v)).collect();
        assert_eq!(cpus, vec![0, 1, 2, 3]);
        assert!(cpus.iter().all(|&c| c < 20));
    }

    #[test]
    fn affinity_interleaves_multiple_vms() {
        let mut s = Scenario::new(HostConfig::small(16));
        for i in 0..4 {
            s = s.vm(
                VmConfig::with_vcpus(16).spanning(1),
                VmWorkload::idle(format!("vm{i}")),
            );
        }
        // 4x16 vCPUs on 16 pCPUs: each pCPU hosts 4 vCPUs.
        let mut load = vec![0u32; 16];
        for vm in 0..4 {
            for v in 0..16 {
                load[s.affinity(vm, v) as usize] += 1;
            }
        }
        assert!(load.iter().all(|&l| l == 4), "even overcommit: {load:?}");
    }

    #[test]
    fn with_mode_rewrites_all_vms() {
        let s = Scenario::new(HostConfig::small(2))
            .vm(VmConfig::default(), VmWorkload::idle("a"))
            .vm(VmConfig::default(), VmWorkload::idle("b"))
            .with_mode(TickMode::Paratick);
        assert!(s.vms.iter().all(|(c, _)| c.tick_mode == TickMode::Paratick));
    }

    #[test]
    fn scenario_builder() {
        let s = Scenario::new(HostConfig::small(1))
            .seed(42)
            .until(RunUntil::Time(SimTime::from_secs(1)));
        assert_eq!(s.seed, 42);
        assert_eq!(s.run_until, RunUntil::Time(SimTime::from_secs(1)));
    }

    fn digest(s: &Scenario) -> String {
        paratick_sim::stable_digest_hex(s)
    }

    #[test]
    fn scenario_hash_is_stable_and_discriminating() {
        let mk = || {
            Scenario::new(HostConfig::small(2))
                .vm(VmConfig::with_vcpus(1), VmWorkload::idle("a"))
                .seed(7)
        };
        assert_eq!(digest(&mk()), digest(&mk()), "same scenario, same hash");
        assert_ne!(digest(&mk()), digest(&mk().seed(8)), "seed changes hash");
        assert_ne!(
            digest(&mk()),
            digest(&mk().with_mode(TickMode::Paratick)),
            "tick mode changes hash"
        );
        assert_ne!(
            digest(&mk()),
            digest(&mk().until(RunUntil::Time(SimTime::from_secs(1)))),
            "horizon changes hash"
        );
        assert_ne!(
            digest(&mk()),
            digest(&mk().faults(FaultConfig::from_spec("campaign").unwrap())),
            "fault plan changes hash"
        );
    }

    #[test]
    fn env_config_defaults_from_empty_environment() {
        let cfg = EnvConfig::from_lookup(|_| None).unwrap();
        assert_eq!(cfg, EnvConfig::default());
        assert_eq!(cfg.scale, 0.25);
        assert_eq!(cfg.iters, 3);
        assert!(cfg.cache, "cache defaults on");
        assert!(!cfg.prof);
    }

    #[test]
    fn env_config_parses_typed_values() {
        let cfg = EnvConfig::from_lookup(|var| match var {
            "PARATICK_SCALE" => Some("0.5".into()),
            "PARATICK_ITERS" => Some("7".into()),
            "PARATICK_JSON" => Some("/tmp/out".into()),
            "PARATICK_PROF" => Some("1".into()),
            "PARATICK_CACHE" => Some("off".into()),
            "PARATICK_JOBS" => Some("4".into()),
            "PARATICK_FAULTS" => Some("campaign".into()),
            "PARATICK_PROP_SEED" => Some("0xDEAD_BEEF".replace('_', "")),
            "PARATICK_PROP_CASES" => Some("128".into()),
            _ => None,
        })
        .unwrap();
        assert_eq!(cfg.scale, 0.5);
        assert_eq!(cfg.iters, 7);
        assert_eq!(cfg.json_dir, Some(PathBuf::from("/tmp/out")));
        assert!(cfg.prof);
        assert!(!cfg.cache);
        assert_eq!(cfg.jobs, Some(4));
        assert!(cfg.faults.as_ref().is_some_and(FaultConfig::any_enabled));
        assert_eq!(cfg.prop_seed, Some(0xDEAD_BEEF));
        assert_eq!(cfg.prop_cases, Some(128));
    }

    #[test]
    fn env_config_rejects_malformed_values() {
        let err = EnvConfig::from_lookup(|var| {
            (var == "PARATICK_SCALE").then(|| "fast".to_string())
        })
        .unwrap_err();
        assert_eq!(err.var, "PARATICK_SCALE");
        assert!(err.to_string().contains("PARATICK_SCALE"), "{err}");

        let err = EnvConfig::from_lookup(|var| {
            (var == "PARATICK_ITERS").then(|| "0".to_string())
        })
        .unwrap_err();
        assert_eq!(err.var, "PARATICK_ITERS");

        let err = EnvConfig::from_lookup(|var| {
            (var == "PARATICK_FAULTS").then(|| "bogus-kind:1".to_string())
        })
        .unwrap_err();
        assert_eq!(err.var, "PARATICK_FAULTS");

        let err = EnvConfig::from_lookup(|var| {
            (var == "PARATICK_PROP_SEED").then(|| "0xZZ".to_string())
        })
        .unwrap_err();
        assert_eq!(err.var, "PARATICK_PROP_SEED");

        let err = EnvConfig::from_lookup(|var| {
            (var == "PARATICK_PROP_CASES").then(|| "0".to_string())
        })
        .unwrap_err();
        assert_eq!(err.var, "PARATICK_PROP_CASES");
    }

    #[test]
    fn env_config_prop_seed_accepts_both_radixes() {
        let hex = EnvConfig::from_lookup(|var| {
            (var == "PARATICK_PROP_SEED").then(|| "0x5EED".to_string())
        })
        .unwrap();
        let dec = EnvConfig::from_lookup(|var| {
            (var == "PARATICK_PROP_SEED").then(|| "24301".to_string())
        })
        .unwrap();
        assert_eq!(hex.prop_seed, Some(0x5EED));
        assert_eq!(hex.prop_seed, dec.prop_seed);
    }

    #[test]
    fn flag_convention_uniform() {
        for off in ["0", "off", "OFF", "false", " False "] {
            assert!(!flag_on(off), "{off:?} should be off");
        }
        for on in ["1", "yes", "on", "anything"] {
            assert!(flag_on(on), "{on:?} should be on");
        }
    }
}
