//! Scenario configuration: host shape, VM shapes, workloads.
//!
//! Defaults mirror the paper's test system (§6): a 4-socket NUMA server
//! with 20 CPUs per socket, Linux/KVM with PLE and halt polling
//! disabled, guests at HZ=250 in dynticks-idle mode, VMs pinned to
//! sockets (small VM on one socket, medium across two, large across
//! four).

use paratick_guest::TickMode;
use paratick_hw::DeviceKind;
use paratick_sim::{Freq, SimDuration, SimTime};
use paratick_vmm::{CostModel, FaultConfig};
use paratick_workloads::VmWorkload;

/// Host (hypervisor machine) configuration.
#[derive(Clone, Debug)]
pub struct HostConfig {
    /// NUMA socket count.
    pub sockets: u32,
    /// Physical CPUs per socket.
    pub pcpus_per_socket: u32,
    /// Host scheduler tick frequency.
    pub host_hz: Freq,
    /// Host scheduler time slice for contended pCPUs.
    pub slice: SimDuration,
    /// KVM adaptive halt polling (paper: disabled).
    pub halt_poll: bool,
    /// Pause-loop exiting (paper: disabled).
    pub ple: bool,
    /// Host-side paratick support compiled in.
    pub paratick_host: bool,
    /// §4.1 tick-rate adaptation: when the host tick rate cannot carry a
    /// guest's declared rate, drive injections with a preemption-timer
    /// cadence at the guest period. The paper's artifact leaves this as
    /// future work (§5.1); we implement it (disable to reproduce the
    /// paper's exact behaviour).
    pub paratick_rate_adapt: bool,
    /// APIC virtualization (APICv): when false (the paper's machine
    /// class), every guest EOI write takes a VM exit.
    pub apicv: bool,
    /// The virtualization cost model (includes the pCPU frequency).
    pub cost: CostModel,
    /// Deterministic fault-injection plan (default: no faults). The
    /// `PARATICK_FAULTS` environment variable overrides this at
    /// `Engine::new` time.
    pub faults: FaultConfig,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            sockets: 4,
            pcpus_per_socket: 20,
            host_hz: Freq::hz(250),
            slice: SimDuration::from_millis(3),
            halt_poll: false,
            ple: false,
            paratick_host: true,
            paratick_rate_adapt: true,
            apicv: false,
            cost: CostModel::default(),
            faults: FaultConfig::off(),
        }
    }
}

impl HostConfig {
    pub fn num_pcpus(&self) -> u32 {
        self.sockets * self.pcpus_per_socket
    }

    /// A small host for fast tests: one socket, `n` pCPUs.
    pub fn small(n: u32) -> Self {
        HostConfig {
            sockets: 1,
            pcpus_per_socket: n,
            ..Default::default()
        }
    }

    pub fn socket_of(&self, pcpu: u32) -> u32 {
        pcpu / self.pcpus_per_socket
    }
}

/// One VM's configuration.
#[derive(Clone, Debug)]
pub struct VmConfig {
    pub vcpus: u32,
    pub tick_mode: TickMode,
    pub guest_hz: Freq,
    /// Block device backing this VM's virtual disk.
    pub device: DeviceKind,
    /// Sockets this VM's vCPUs are pinned across (paper §6.2: small=1,
    /// medium=2, large=4). `None` = spread over the whole host.
    pub socket_span: Option<u32>,
    /// Ablation: paratick disables its wakeup timer at idle exit instead
    /// of leaving it armed (the paper's §4.1 heuristic argues against
    /// this; the ablation bench measures the argument).
    pub paratick_naive_idle_exit: bool,
    /// Boot realism (§5.2.1): high-resolution timers come up this long
    /// after boot; until then every CPU runs a classic periodic tick,
    /// and only at the switch does the configured mode take over (with
    /// paratick's declaration hypercall). Zero = steady-state runs.
    pub hres_boot_delay: SimDuration,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            vcpus: 1,
            tick_mode: TickMode::DynticksIdle,
            guest_hz: Freq::hz(250),
            // The paper's VM disks are qcow2 files on a shared disk;
            // repeatedly-read data lands in the host page cache.
            device: DeviceKind::VirtioCached,
            socket_span: None,
            paratick_naive_idle_exit: false,
            hres_boot_delay: SimDuration::ZERO,
        }
    }
}

impl VmConfig {
    pub fn with_vcpus(vcpus: u32) -> Self {
        VmConfig {
            vcpus,
            ..Default::default()
        }
    }

    pub fn mode(mut self, mode: TickMode) -> Self {
        self.tick_mode = mode;
        self
    }

    pub fn spanning(mut self, sockets: u32) -> Self {
        self.socket_span = Some(sockets);
        self
    }

    /// The paper's "small" VM: 4 vCPUs on one socket.
    pub fn small_vm() -> Self {
        Self::with_vcpus(4).spanning(1)
    }

    /// The paper's "medium" VM: 16 vCPUs across two sockets.
    pub fn medium_vm() -> Self {
        Self::with_vcpus(16).spanning(2)
    }

    /// The paper's "large" VM: 64 vCPUs across four sockets.
    pub fn large_vm() -> Self {
        Self::with_vcpus(64).spanning(4)
    }
}

/// When the simulation stops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunUntil {
    /// Every VM's workload has finished (execution-time experiments).
    AllWorkloadsDone,
    /// A fixed horizon (idle / steady-state experiments).
    Time(SimTime),
}

/// A complete simulation scenario.
#[derive(Debug)]
pub struct Scenario {
    pub host: HostConfig,
    pub vms: Vec<(VmConfig, VmWorkload)>,
    pub seed: u64,
    pub run_until: RunUntil,
}

impl Scenario {
    pub fn new(host: HostConfig) -> Self {
        Scenario {
            host,
            vms: Vec::new(),
            seed: 0x9a7a71c4,
            run_until: RunUntil::AllWorkloadsDone,
        }
    }

    pub fn vm(mut self, cfg: VmConfig, workload: VmWorkload) -> Self {
        self.vms.push((cfg, workload));
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn until(mut self, until: RunUntil) -> Self {
        self.run_until = until;
        self
    }

    /// Attach a fault-injection plan to the host.
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.host.faults = faults;
        self
    }

    /// Switch every VM to the given tick mode (the vanilla-vs-paratick
    /// comparison re-runs the same scenario with a different mode).
    pub fn with_mode(mut self, mode: TickMode) -> Self {
        for (cfg, _) in &mut self.vms {
            cfg.tick_mode = mode;
        }
        self
    }

    /// Compute the pCPU affinity for vCPU `v` of the `vm_index`-th VM:
    /// round-robin across the pCPUs of the VM's socket span, with VMs
    /// offset so co-resident VMs interleave instead of stacking.
    pub fn affinity(&self, vm_index: usize, vcpu: u32) -> u32 {
        let (cfg, _) = &self.vms[vm_index];
        let span = cfg
            .socket_span
            .unwrap_or(self.host.sockets)
            .min(self.host.sockets);
        let pool = span * self.host.pcpus_per_socket;
        let base = (vm_index as u32 * cfg.vcpus) % pool;
        (base + vcpu) % pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_host_matches_paper() {
        let h = HostConfig::default();
        assert_eq!(h.num_pcpus(), 80);
        assert_eq!(h.host_hz.as_hz(), 250);
        assert!(!h.halt_poll, "paper disables halt polling");
        assert!(!h.ple, "paper disables PLE");
        assert_eq!(h.socket_of(0), 0);
        assert_eq!(h.socket_of(19), 0);
        assert_eq!(h.socket_of(20), 1);
        assert_eq!(h.socket_of(79), 3);
    }

    #[test]
    fn paper_vm_shapes() {
        assert_eq!(VmConfig::small_vm().vcpus, 4);
        assert_eq!(VmConfig::small_vm().socket_span, Some(1));
        assert_eq!(VmConfig::medium_vm().vcpus, 16);
        assert_eq!(VmConfig::medium_vm().socket_span, Some(2));
        assert_eq!(VmConfig::large_vm().vcpus, 64);
        assert_eq!(VmConfig::large_vm().socket_span, Some(4));
    }

    #[test]
    fn affinity_spreads_within_span() {
        let s = Scenario::new(HostConfig::default()).vm(
            VmConfig::small_vm(),
            VmWorkload::idle("x"),
        );
        // 4 vCPUs on socket 0 (pcpus 0..20).
        let cpus: Vec<u32> = (0..4).map(|v| s.affinity(0, v)).collect();
        assert_eq!(cpus, vec![0, 1, 2, 3]);
        assert!(cpus.iter().all(|&c| c < 20));
    }

    #[test]
    fn affinity_interleaves_multiple_vms() {
        let mut s = Scenario::new(HostConfig::small(16));
        for i in 0..4 {
            s = s.vm(
                VmConfig::with_vcpus(16).spanning(1),
                VmWorkload::idle(format!("vm{i}")),
            );
        }
        // 4x16 vCPUs on 16 pCPUs: each pCPU hosts 4 vCPUs.
        let mut load = vec![0u32; 16];
        for vm in 0..4 {
            for v in 0..16 {
                load[s.affinity(vm, v) as usize] += 1;
            }
        }
        assert!(load.iter().all(|&l| l == 4), "even overcommit: {load:?}");
    }

    #[test]
    fn with_mode_rewrites_all_vms() {
        let s = Scenario::new(HostConfig::small(2))
            .vm(VmConfig::default(), VmWorkload::idle("a"))
            .vm(VmConfig::default(), VmWorkload::idle("b"))
            .with_mode(TickMode::Paratick);
        assert!(s.vms.iter().all(|(c, _)| c.tick_mode == TickMode::Paratick));
    }

    #[test]
    fn scenario_builder() {
        let s = Scenario::new(HostConfig::small(1))
            .seed(42)
            .until(RunUntil::Time(SimTime::from_secs(1)));
        assert_eq!(s.seed, 42);
        assert_eq!(s.run_until, RunUntil::Time(SimTime::from_secs(1)));
    }
}
