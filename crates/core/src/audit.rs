//! Runtime invariant auditing over the engine's structured event stream.
//!
//! The [`InvariantAuditor`] is an always-on, cheap observer the engine
//! feeds every [`SimEvent`] it emits. It checks the conservation laws
//! the simulation's credibility rests on — and that fault injection is
//! specifically designed to stress:
//!
//! * **Per-vCPU virtual time is monotonic** — a vCPU's events never go
//!   backwards in simulated time (each vCPU is pinned to one pCPU whose
//!   accounting frontier only advances).
//! * **Timer lifecycle** — a timer fires or is cancelled only while
//!   armed; a lost-IRQ fault may only drop an armed timer. Every
//!   programmed timer is therefore accounted for: it fires, is
//!   cancelled, or is explicitly lost to an injected fault.
//! * **vCPU run-state machine** — dispatch requires a runnable vCPU,
//!   preemption and idle entry require a running one, idle exit a
//!   halted one.
//! * **One vCPU per pCPU** — running spans never overlap on a pCPU.
//! * **Injection context** — interrupt injection only happens into a
//!   running vCPU (injection rides a VM entry).
//! * **Cycle conservation** (at finalize) — every pCPU's ledger sums
//!   exactly to its accounting frontier: busy + idle + overhead equals
//!   wall time.
//!
//! Violations are *reported*, not panicked on: they land in the
//! [`AuditReport`] inside `RunMetrics`, rendered by `report::
//! audit_summary` and the `inspect` binary. A clean fault-free run must
//! produce zero violations; a faulted run must too — faults are modeled
//! events (`FaultInjected`), not accounting leaks.

use paratick_sim::SimTime;
use paratick_vmm::{FaultKind, PCpu, SimEvent, VcpuId};
use std::collections::HashMap;

/// Cap on individually-recorded violations; past it only the total
/// counter grows (a broken run would otherwise balloon the report).
const MAX_RECORDED: usize = 32;

/// One invariant violation, timestamped in simulated nanoseconds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditViolation {
    pub at_ns: u64,
    /// Short invariant code, e.g. `timer-lifecycle`, `conservation`.
    pub invariant: String,
    pub detail: String,
}

/// The auditor's end-of-run verdict, embedded in `RunMetrics`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Events the auditor observed.
    pub events_checked: u64,
    /// All violations, including those past the recording cap.
    pub total_violations: u64,
    /// The first [`MAX_RECORDED`] violations, in event order.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0
    }
}

impl paratick_sim::ToJson for AuditViolation {
    fn to_json(&self) -> paratick_sim::Json {
        paratick_sim::Json::obj(vec![
            ("at_ns", self.at_ns.to_json()),
            ("invariant", self.invariant.to_json()),
            ("detail", self.detail.to_json()),
        ])
    }
}

impl paratick_sim::FromJson for AuditViolation {
    fn from_json(v: &paratick_sim::Json) -> Result<Self, paratick_sim::JsonError> {
        Ok(AuditViolation {
            at_ns: paratick_sim::json::field(v, "at_ns")?,
            invariant: paratick_sim::json::field(v, "invariant")?,
            detail: paratick_sim::json::field(v, "detail")?,
        })
    }
}

impl paratick_sim::ToJson for AuditReport {
    fn to_json(&self) -> paratick_sim::Json {
        paratick_sim::Json::obj(vec![
            ("events_checked", self.events_checked.to_json()),
            ("total_violations", self.total_violations.to_json()),
            ("violations", self.violations.to_json()),
        ])
    }
}

impl paratick_sim::FromJson for AuditReport {
    fn from_json(v: &paratick_sim::Json) -> Result<Self, paratick_sim::JsonError> {
        Ok(AuditReport {
            events_checked: paratick_sim::json::field(v, "events_checked")?,
            total_violations: paratick_sim::json::field(v, "total_violations")?,
            violations: paratick_sim::json::field(v, "violations")?,
        })
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
enum RunState {
    #[default]
    Runnable,
    Running,
    Halted,
}

#[derive(Default)]
struct VcpuAudit {
    state: RunState,
    timer_armed: bool,
    last_event_ns: u64,
}

/// Streaming invariant checker; see the module docs for the catalog.
#[derive(Default)]
pub struct InvariantAuditor {
    vcpus: HashMap<VcpuId, VcpuAudit>,
    /// Which vCPU occupies each pCPU's running span, if any.
    occupant: HashMap<u32, VcpuId>,
    report: AuditReport,
}

impl InvariantAuditor {
    pub fn new() -> Self {
        Self::default()
    }

    fn violate(&mut self, t: SimTime, invariant: &'static str, detail: String) {
        self.report.total_violations += 1;
        if self.report.violations.len() < MAX_RECORDED {
            self.report.violations.push(AuditViolation {
                at_ns: t.as_nanos(),
                invariant: invariant.to_string(),
                detail,
            });
        }
    }

    fn transition(
        &mut self,
        t: SimTime,
        vcpu: VcpuId,
        expect: RunState,
        to: RunState,
        what: &'static str,
    ) {
        let state = self.vcpus.entry(vcpu).or_default().state;
        if state != expect {
            self.violate(
                t,
                "vcpu-state",
                format!("{vcpu}: {what} while {state:?} (expected {expect:?})"),
            );
        }
        self.vcpus.entry(vcpu).or_default().state = to;
    }

    /// Feed one event. Call in emission order.
    pub fn on_event(&mut self, t: SimTime, ev: &SimEvent) {
        self.report.events_checked += 1;
        if let Some(vcpu) = ev.vcpu() {
            let va = self.vcpus.entry(vcpu).or_default();
            if t.as_nanos() < va.last_event_ns {
                let last = va.last_event_ns;
                self.violate(
                    t,
                    "time-monotonic",
                    format!("{vcpu}: event at {}ns after one at {last}ns", t.as_nanos()),
                );
            } else {
                va.last_event_ns = t.as_nanos();
            }
        }
        match *ev {
            SimEvent::Dispatch { vcpu, pcpu, .. } => {
                self.transition(t, vcpu, RunState::Runnable, RunState::Running, "dispatch");
                if let Some(prev) = self.occupant.insert(pcpu.0, vcpu) {
                    self.violate(
                        t,
                        "pcpu-exclusive",
                        format!("{vcpu} dispatched on pcpu{} still running {prev}", pcpu.0),
                    );
                }
            }
            SimEvent::Preempt { vcpu, pcpu, .. } => {
                self.transition(t, vcpu, RunState::Running, RunState::Runnable, "preempt");
                self.occupant.remove(&pcpu.0);
            }
            SimEvent::IdleEnter { vcpu, pcpu } => {
                self.transition(t, vcpu, RunState::Running, RunState::Halted, "idle enter");
                self.occupant.remove(&pcpu.0);
            }
            SimEvent::IdleExit { vcpu, .. } => {
                self.transition(t, vcpu, RunState::Halted, RunState::Runnable, "wake");
            }
            SimEvent::VmExit { vcpu, .. } => {
                if self.vcpus.entry(vcpu).or_default().state != RunState::Running {
                    self.violate(t, "exit-context", format!("{vcpu}: VM exit while not running"));
                }
            }
            SimEvent::Inject { vcpu, .. } => {
                if self.vcpus.entry(vcpu).or_default().state != RunState::Running {
                    self.violate(
                        t,
                        "inject-context",
                        format!("{vcpu}: injection while not running"),
                    );
                }
            }
            SimEvent::TimerProgram { vcpu, .. } => {
                // Re-programming over an armed timer is legal (replace).
                self.vcpus.entry(vcpu).or_default().timer_armed = true;
            }
            SimEvent::TimerCancel { vcpu } => {
                let va = self.vcpus.entry(vcpu).or_default();
                if !va.timer_armed {
                    self.violate(t, "timer-lifecycle", format!("{vcpu}: cancel of unarmed timer"));
                } else {
                    self.vcpus.entry(vcpu).or_default().timer_armed = false;
                }
            }
            SimEvent::TimerFire { vcpu } => {
                let va = self.vcpus.entry(vcpu).or_default();
                if !va.timer_armed {
                    self.violate(t, "timer-lifecycle", format!("{vcpu}: fire of unarmed timer"));
                } else {
                    self.vcpus.entry(vcpu).or_default().timer_armed = false;
                }
            }
            SimEvent::FaultInjected { kind, vcpu } => match (kind, vcpu) {
                (FaultKind::LostTimerIrq, Some(v)) => {
                    let va = self.vcpus.entry(v).or_default();
                    if !va.timer_armed {
                        self.violate(
                            t,
                            "timer-lifecycle",
                            format!("{v}: lost-IRQ fault on unarmed timer"),
                        );
                    } else {
                        self.vcpus.entry(v).or_default().timer_armed = false;
                    }
                }
                (FaultKind::CoalescedTimerIrq, Some(v))
                    if !self.vcpus.entry(v).or_default().timer_armed =>
                {
                    self.violate(
                        t,
                        "timer-lifecycle",
                        format!("{v}: coalesce fault on unarmed timer"),
                    );
                }
                _ => {}
            },
            // Watchdog recovery re-delivers a timer that was already
            // accounted as lost; the remaining kinds carry no state.
            SimEvent::WatchdogRecovery { .. }
            | SimEvent::TimerFallback { .. }
            | SimEvent::ParavirtFallback { .. }
            | SimEvent::HypercallFailed { .. }
            | SimEvent::Hypercall { .. }
            | SimEvent::HaltPoll { .. }
            | SimEvent::BootSwitch { .. }
            | SimEvent::HostTick { .. }
            | SimEvent::WorkloadDone { .. } => {}
        }
    }

    /// End-of-run checks (cycle conservation) and report extraction.
    /// The engine calls this after flushing all accounting.
    pub fn finalize(mut self, pcpus: &[PCpu], end: SimTime) -> AuditReport {
        for p in pcpus {
            let total = p.ledger().total().as_nanos();
            let frontier = p.frontier().as_nanos();
            if total != frontier {
                self.violate(
                    end,
                    "conservation",
                    format!(
                        "pcpu{}: ledger sums to {total}ns but frontier is {frontier}ns",
                        p.id.0
                    ),
                );
            }
        }
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paratick_vmm::{ExitReason, PcpuId};

    fn v(n: u32) -> VcpuId {
        VcpuId::new(0, n)
    }

    fn dispatch(a: &mut InvariantAuditor, t: u64, vcpu: u32, pcpu: u32) {
        a.on_event(
            SimTime::from_nanos(t),
            &SimEvent::Dispatch {
                vcpu: v(vcpu),
                pcpu: PcpuId(pcpu),
                run_queue: 0,
            },
        );
    }

    #[test]
    fn clean_lifecycle_has_no_violations() {
        let mut a = InvariantAuditor::new();
        dispatch(&mut a, 0, 0, 0);
        a.on_event(
            SimTime::from_nanos(10),
            &SimEvent::TimerProgram {
                vcpu: v(0),
                deadline: SimTime::from_micros(5),
            },
        );
        a.on_event(
            SimTime::from_nanos(20),
            &SimEvent::VmExit {
                vcpu: v(0),
                reason: ExitReason::MsrWriteTscDeadline,
                pollution_ns: 0,
            },
        );
        a.on_event(SimTime::from_micros(5), &SimEvent::TimerFire { vcpu: v(0) });
        a.on_event(
            SimTime::from_micros(6),
            &SimEvent::IdleEnter {
                vcpu: v(0),
                pcpu: PcpuId(0),
            },
        );
        a.on_event(
            SimTime::from_micros(9),
            &SimEvent::IdleExit {
                vcpu: v(0),
                pcpu: PcpuId(0),
                idle_ns: 3_000,
            },
        );
        let r = a.finalize(&[], SimTime::from_micros(10));
        assert!(r.is_clean(), "{:?}", r.violations);
        assert_eq!(r.events_checked, 6);
    }

    #[test]
    fn fire_without_arm_is_caught() {
        let mut a = InvariantAuditor::new();
        a.on_event(SimTime::ZERO, &SimEvent::TimerFire { vcpu: v(0) });
        let r = a.finalize(&[], SimTime::ZERO);
        assert_eq!(r.total_violations, 1);
        assert_eq!(r.violations[0].invariant, "timer-lifecycle");
    }

    #[test]
    fn lost_fault_accounts_for_armed_timer() {
        let mut a = InvariantAuditor::new();
        a.on_event(
            SimTime::ZERO,
            &SimEvent::TimerProgram {
                vcpu: v(0),
                deadline: SimTime::from_micros(1),
            },
        );
        a.on_event(
            SimTime::from_nanos(500),
            &SimEvent::FaultInjected {
                kind: FaultKind::LostTimerIrq,
                vcpu: Some(v(0)),
            },
        );
        // The fire never happens; the loss accounted for the timer. A
        // subsequent cancel would now be a violation:
        a.on_event(SimTime::from_micros(2), &SimEvent::TimerCancel { vcpu: v(0) });
        let r = a.finalize(&[], SimTime::from_micros(3));
        assert_eq!(r.total_violations, 1);
        assert_eq!(r.violations[0].invariant, "timer-lifecycle");
    }

    #[test]
    fn double_dispatch_on_pcpu_is_caught() {
        let mut a = InvariantAuditor::new();
        dispatch(&mut a, 0, 0, 0);
        dispatch(&mut a, 10, 1, 0);
        let r = a.finalize(&[], SimTime::from_nanos(20));
        assert!(r
            .violations
            .iter()
            .any(|x| x.invariant == "pcpu-exclusive"));
    }

    #[test]
    fn backwards_vcpu_time_is_caught() {
        let mut a = InvariantAuditor::new();
        dispatch(&mut a, 1_000, 0, 0);
        a.on_event(
            SimTime::from_nanos(500),
            &SimEvent::VmExit {
                vcpu: v(0),
                reason: ExitReason::Hlt,
                pollution_ns: 0,
            },
        );
        let r = a.finalize(&[], SimTime::from_micros(1));
        assert!(r.violations.iter().any(|x| x.invariant == "time-monotonic"));
    }

    #[test]
    fn conservation_gap_is_reported_not_panicked() {
        use paratick_sim::{Freq, SimDuration};
        use paratick_vmm::CycleCategory;
        let mut clean = PCpu::new(PcpuId(0), 0, Freq::ghz(2));
        clean.account(CycleCategory::Idle, SimDuration::from_micros(5));
        let r = InvariantAuditor::new().finalize(&[clean], SimTime::from_micros(5));
        assert!(r.is_clean());
        // A ledger/frontier mismatch cannot be built through the public
        // PCpu API (account* keeps them in lockstep) — which is the
        // invariant itself; the report stays clean here.
    }

    #[test]
    fn violations_capped_but_counted() {
        let mut a = InvariantAuditor::new();
        for i in 0..100 {
            a.on_event(
                SimTime::from_nanos(i),
                &SimEvent::TimerFire { vcpu: v(0) },
            );
        }
        let r = a.finalize(&[], SimTime::from_micros(1));
        assert_eq!(r.total_violations, 100);
        assert_eq!(r.violations.len(), 32);
        assert!(!r.is_clean());
    }

    #[test]
    fn inject_outside_running_is_caught() {
        let mut a = InvariantAuditor::new();
        a.on_event(
            SimTime::ZERO,
            &SimEvent::Inject {
                vcpu: v(0),
                virtual_tick: true,
            },
        );
        let r = a.finalize(&[], SimTime::from_nanos(1));
        assert!(r.violations.iter().any(|x| x.invariant == "inject-context"));
    }
}
