//! Observability sinks over the engine's structured event stream.
//!
//! The engine emits typed [`SimEvent`]s (see `paratick_vmm::event`) to
//! any attached [`EventSink`]. This module provides the built-in sinks:
//!
//! * [`TraceSink`] — renders events into the legacy string
//!   [`TraceBuffer`] ring; backs [`crate::engine::Engine::run_traced`].
//! * [`PerfettoSink`] — streams a Chrome trace-event JSON file (loadable
//!   in Perfetto / `chrome://tracing`): one track per pCPU with vCPU
//!   running spans, instant events for exits/injections/ticks, and
//!   counter tracks for run-queue depth, running-vCPU count and
//!   pollution debt.
//! * [`TimeSeriesSink`] — windows counters over sim time (exits/s,
//!   timer exits/s, busy/idle fraction, …) and writes CSV or JSON.
//!
//! Environment knobs (read once per process, first engine wins, matching
//! the `PARATICK_JSON`/`PARATICK_SCALE` convention of the bench crate):
//!
//! * `PARATICK_TRACE=<path>` — attach a [`PerfettoSink`] writing there.
//! * `PARATICK_TIMESERIES=<path>` — attach a [`TimeSeriesSink`]
//!   (`.json` extension selects JSON, anything else CSV);
//!   `PARATICK_TIMESERIES_WINDOW_US` overrides the 1000 µs window.
//! * `PARATICK_PROF=1` — per-event-kind wall-clock self-profiling.

use paratick_sim::{SimTime, TraceBuffer};
use paratick_vmm::{EventSink, PcpuId, SimEvent, VcpuId};
use std::cell::RefCell;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};

// ---------------------------------------------------------------------
// Legacy string trace
// ---------------------------------------------------------------------

/// Renders the event stream into the legacy [`TraceBuffer`] ring.
///
/// The rendered lines are a superset of what the engine used to record
/// directly ("… exit hlt", "… wake", "… dispatch on pcpu0"), so
/// existing post-mortem tooling keeps working.
pub struct TraceSink {
    buf: Rc<RefCell<TraceBuffer>>,
}

impl TraceSink {
    /// A sink over a fresh ring of `capacity` records; the returned
    /// handle reads the buffer after the engine (which owns the sink)
    /// is gone.
    pub fn new(capacity: usize) -> (Self, Rc<RefCell<TraceBuffer>>) {
        let buf = Rc::new(RefCell::new(TraceBuffer::with_capacity(capacity)));
        (Self { buf: buf.clone() }, buf)
    }

    /// The legacy one-line rendering of an event.
    pub fn render(ev: &SimEvent) -> String {
        match *ev {
            SimEvent::VmExit { vcpu, reason, .. } => format!("{vcpu} exit {reason}"),
            SimEvent::TimerProgram { vcpu, deadline } => {
                format!("{vcpu} timer program @{deadline}")
            }
            SimEvent::TimerCancel { vcpu } => format!("{vcpu} timer cancel"),
            SimEvent::Inject { vcpu, virtual_tick } => {
                if virtual_tick {
                    format!("{vcpu} inject virtual tick")
                } else {
                    format!("{vcpu} inject irq")
                }
            }
            SimEvent::IdleEnter { vcpu, .. } => format!("{vcpu} idle enter"),
            SimEvent::IdleExit { vcpu, .. } => format!("{vcpu} wake"),
            SimEvent::Dispatch { vcpu, pcpu, .. } => {
                format!("{vcpu} dispatch on {pcpu:?}")
            }
            SimEvent::Preempt { vcpu, pcpu, .. } => format!("{vcpu} preempted off {pcpu:?}"),
            SimEvent::HostTick { pcpu } => format!("{pcpu:?} host tick"),
            SimEvent::Hypercall { vcpu, tick_hz, .. } => {
                format!("{vcpu} hypercall declare {tick_hz}Hz")
            }
            SimEvent::HaltPoll { vcpu, hit } => {
                format!("{vcpu} halt-poll {}", if hit { "hit" } else { "miss" })
            }
            SimEvent::BootSwitch { vcpu } => format!("{vcpu} boot switch"),
            SimEvent::WorkloadDone { vm } => format!("vm{vm} workload done"),
            SimEvent::TimerFire { vcpu } => format!("{vcpu} timer fire"),
            SimEvent::FaultInjected { kind, vcpu } => match vcpu {
                Some(v) => format!("{v} fault {}", kind.name()),
                None => format!("fault {}", kind.name()),
            },
            SimEvent::WatchdogRecovery { vcpu } => format!("{vcpu} watchdog recovery"),
            SimEvent::TimerFallback { vcpu } => format!("{vcpu} timer fallback lapic-oneshot"),
            SimEvent::ParavirtFallback { vcpu } => format!("{vcpu} paravirt fallback dynticks"),
            SimEvent::HypercallFailed { vcpu, attempt } => {
                format!("{vcpu} hypercall failed (attempt {attempt})")
            }
        }
    }
}

impl EventSink for TraceSink {
    fn on_event(&mut self, t: SimTime, ev: &SimEvent) {
        self.buf.borrow_mut().record_with(t, || Self::render(ev));
    }
}

// ---------------------------------------------------------------------
// Chrome trace-event / Perfetto exporter
// ---------------------------------------------------------------------

/// Streams the run as Chrome trace-event JSON.
///
/// Layout: pid 0 is the simulated machine; each pCPU is a thread (tid =
/// pCPU index) whose duration spans are the vCPUs running there. Exits,
/// injections and host ticks are instant events on the owning track;
/// `runq`, `running_vcpus` and `pollution_ns` are counter tracks.
/// Timestamps are simulated microseconds.
pub struct PerfettoSink {
    out: Option<BufWriter<File>>,
    path: PathBuf,
    first: bool,
    /// Open running-span per pCPU: which vCPU, since when.
    open: Vec<Option<(VcpuId, SimTime)>>,
    announced: Vec<bool>,
}

/// Timestamp in fractional microseconds, fixed precision so identical
/// runs serialize identically.
fn us(t: SimTime) -> String {
    format!("{:.3}", t.as_nanos() as f64 / 1000.0)
}

impl PerfettoSink {
    pub fn create(path: PathBuf) -> std::io::Result<Self> {
        let mut out = BufWriter::new(File::create(&path)?);
        out.write_all(b"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")?;
        let mut s = PerfettoSink {
            out: Some(out),
            path,
            first: true,
            open: Vec::new(),
            announced: Vec::new(),
        };
        s.write_raw("{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"paratick-sim\"}}".to_string());
        Ok(s)
    }

    fn write_raw(&mut self, ev: String) {
        let Some(out) = self.out.as_mut() else {
            return;
        };
        let sep = if self.first { "" } else { ",\n" };
        self.first = false;
        if let Err(e) = write!(out, "{sep}{ev}") {
            eprintln!("PARATICK_TRACE: write {} failed: {e}", self.path.display());
            self.out = None;
        }
    }

    fn ensure_pcpu(&mut self, p: PcpuId) {
        let i = p.0 as usize;
        if self.open.len() <= i {
            self.open.resize(i + 1, None);
            self.announced.resize(i + 1, false);
        }
        if !self.announced[i] {
            self.announced[i] = true;
            self.write_raw(format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{i},\"name\":\"thread_name\",\"args\":{{\"name\":\"pcpu{i}\"}}}}"
            ));
            self.write_raw(format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{i},\"name\":\"thread_sort_index\",\"args\":{{\"sort_index\":{i}}}}}"
            ));
        }
    }

    /// Track (tid) a vCPU currently runs on, if any.
    fn tid_of(&self, vcpu: VcpuId) -> Option<usize> {
        self.open
            .iter()
            .position(|s| matches!(s, Some((v, _)) if *v == vcpu))
    }

    fn running_count(&self) -> usize {
        self.open.iter().flatten().count()
    }

    fn counter(&mut self, t: SimTime, name: &str, series: &str, value: u64) {
        self.write_raw(format!(
            "{{\"ph\":\"C\",\"pid\":0,\"ts\":{},\"name\":\"{name}\",\"args\":{{\"{series}\":{value}}}}}",
            us(t)
        ));
    }

    fn instant(&mut self, t: SimTime, tid: usize, name: &str, args: &str) {
        self.write_raw(format!(
            "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"name\":\"{name}\",\"args\":{{{args}}}}}",
            us(t)
        ));
    }

    fn close_span(&mut self, p: PcpuId, t: SimTime) {
        let i = p.0 as usize;
        if self.open.get(i).is_some_and(|s| s.is_some()) {
            self.open[i] = None;
            self.write_raw(format!(
                "{{\"ph\":\"E\",\"pid\":0,\"tid\":{i},\"ts\":{}}}",
                us(t)
            ));
        }
    }
}

impl EventSink for PerfettoSink {
    fn on_event(&mut self, t: SimTime, ev: &SimEvent) {
        match *ev {
            SimEvent::Dispatch {
                vcpu,
                pcpu,
                run_queue,
            } => {
                self.ensure_pcpu(pcpu);
                let i = pcpu.0 as usize;
                self.close_span(pcpu, t); // defensive: never nest spans
                self.open[i] = Some((vcpu, t));
                self.write_raw(format!(
                    "{{\"ph\":\"B\",\"pid\":0,\"tid\":{i},\"ts\":{},\"name\":\"{vcpu}\",\"cat\":\"vcpu\",\"args\":{{\"runq\":{run_queue}}}}}",
                    us(t)
                ));
                self.counter(t, "runq", &format!("pcpu{i}"), u64::from(run_queue));
                let n = self.running_count() as u64;
                self.counter(t, "running_vcpus", "running", n);
            }
            SimEvent::Preempt {
                pcpu, run_queue, ..
            } => {
                self.ensure_pcpu(pcpu);
                self.close_span(pcpu, t);
                self.counter(t, "runq", &format!("pcpu{}", pcpu.0), u64::from(run_queue));
                let n = self.running_count() as u64;
                self.counter(t, "running_vcpus", "running", n);
            }
            SimEvent::IdleEnter { pcpu, .. } => {
                self.ensure_pcpu(pcpu);
                self.close_span(pcpu, t);
                let n = self.running_count() as u64;
                self.counter(t, "running_vcpus", "running", n);
            }
            SimEvent::IdleExit {
                vcpu,
                pcpu,
                idle_ns,
            } => {
                self.ensure_pcpu(pcpu);
                self.instant(
                    t,
                    pcpu.0 as usize,
                    "wake",
                    &format!("\"vcpu\":\"{vcpu}\",\"idle_ns\":{idle_ns}"),
                );
            }
            SimEvent::VmExit {
                vcpu,
                reason,
                pollution_ns,
            } => {
                let tid = self.tid_of(vcpu).unwrap_or(99);
                self.instant(t, tid, reason.name(), &format!("\"vcpu\":\"{vcpu}\""));
                self.counter(t, "pollution_ns", &vcpu.to_string(), pollution_ns);
            }
            SimEvent::Inject { vcpu, virtual_tick } => {
                let tid = self.tid_of(vcpu).unwrap_or(99);
                let name = if virtual_tick {
                    "virtual_tick"
                } else {
                    "inject"
                };
                self.instant(t, tid, name, &format!("\"vcpu\":\"{vcpu}\""));
            }
            SimEvent::HostTick { pcpu } => {
                self.ensure_pcpu(pcpu);
                self.instant(t, pcpu.0 as usize, "host_tick", "");
            }
            SimEvent::TimerProgram { vcpu, deadline } => {
                let tid = self.tid_of(vcpu).unwrap_or(99);
                self.instant(
                    t,
                    tid,
                    "timer_program",
                    &format!("\"vcpu\":\"{vcpu}\",\"deadline_us\":{}", us(deadline)),
                );
            }
            SimEvent::TimerCancel { vcpu } => {
                let tid = self.tid_of(vcpu).unwrap_or(99);
                self.instant(t, tid, "timer_cancel", &format!("\"vcpu\":\"{vcpu}\""));
            }
            SimEvent::Hypercall {
                vcpu,
                tick_hz,
                rate_adapted,
            } => {
                let tid = self.tid_of(vcpu).unwrap_or(99);
                self.instant(
                    t,
                    tid,
                    "hypercall",
                    &format!(
                        "\"vcpu\":\"{vcpu}\",\"tick_hz\":{tick_hz},\"rate_adapted\":{rate_adapted}"
                    ),
                );
            }
            SimEvent::HaltPoll { vcpu, hit } => {
                let tid = self.tid_of(vcpu).unwrap_or(99);
                self.instant(
                    t,
                    tid,
                    "halt_poll",
                    &format!("\"vcpu\":\"{vcpu}\",\"hit\":{hit}"),
                );
            }
            SimEvent::BootSwitch { vcpu } => {
                let tid = self.tid_of(vcpu).unwrap_or(99);
                self.instant(t, tid, "boot_switch", &format!("\"vcpu\":\"{vcpu}\""));
            }
            SimEvent::WorkloadDone { vm } => {
                self.instant(t, 0, "workload_done", &format!("\"vm\":{vm}"));
            }
            SimEvent::TimerFire { vcpu } => {
                let tid = self.tid_of(vcpu).unwrap_or(99);
                self.instant(t, tid, "timer_fire", &format!("\"vcpu\":\"{vcpu}\""));
            }
            SimEvent::FaultInjected { kind, vcpu } => {
                let tid = vcpu.and_then(|v| self.tid_of(v)).unwrap_or(0);
                let args = match vcpu {
                    Some(v) => format!("\"kind\":\"{}\",\"vcpu\":\"{v}\"", kind.name()),
                    None => format!("\"kind\":\"{}\"", kind.name()),
                };
                self.instant(t, tid, "fault", &args);
            }
            SimEvent::WatchdogRecovery { vcpu } => {
                let tid = self.tid_of(vcpu).unwrap_or(99);
                self.instant(t, tid, "watchdog_recovery", &format!("\"vcpu\":\"{vcpu}\""));
            }
            SimEvent::TimerFallback { vcpu } => {
                let tid = self.tid_of(vcpu).unwrap_or(99);
                self.instant(t, tid, "timer_fallback", &format!("\"vcpu\":\"{vcpu}\""));
            }
            SimEvent::ParavirtFallback { vcpu } => {
                let tid = self.tid_of(vcpu).unwrap_or(99);
                self.instant(t, tid, "paravirt_fallback", &format!("\"vcpu\":\"{vcpu}\""));
            }
            SimEvent::HypercallFailed { vcpu, attempt } => {
                let tid = self.tid_of(vcpu).unwrap_or(99);
                self.instant(
                    t,
                    tid,
                    "hypercall_failed",
                    &format!("\"vcpu\":\"{vcpu}\",\"attempt\":{attempt}"),
                );
            }
        }
    }

    fn finish(&mut self, end: SimTime) {
        for i in 0..self.open.len() {
            self.close_span(PcpuId(i as u32), end);
        }
        if let Some(mut out) = self.out.take() {
            let res = out.write_all(b"\n]}\n").and_then(|()| out.flush());
            if let Err(e) = res {
                eprintln!("PARATICK_TRACE: finish {} failed: {e}", self.path.display());
            }
        }
    }
}

// ---------------------------------------------------------------------
// Windowed time series
// ---------------------------------------------------------------------

#[derive(Clone, Default)]
struct Bucket {
    exits: u64,
    timer_exits: u64,
    injections: u64,
    virtual_ticks: u64,
    dispatches: u64,
    preempts: u64,
    wakeups: u64,
    host_ticks: u64,
    busy_ns: u64,
}

/// Windows counters over sim time and writes one row per window at the
/// end of the run — CSV by default, JSON when the path ends in `.json`.
pub struct TimeSeriesSink {
    path: PathBuf,
    window_ns: u64,
    n_pcpus: usize,
    rows: Vec<Bucket>,
    /// Running-span start per pCPU, for busy-fraction integration.
    open: Vec<Option<u64>>,
}

impl TimeSeriesSink {
    pub fn new(path: PathBuf, window_us: u64, n_pcpus: usize) -> Self {
        TimeSeriesSink {
            path,
            window_ns: window_us.max(1) * 1_000,
            n_pcpus: n_pcpus.max(1),
            rows: Vec::new(),
            open: vec![None; n_pcpus.max(1)],
        }
    }

    fn bucket(&mut self, t: SimTime) -> &mut Bucket {
        let idx = (t.as_nanos() / self.window_ns) as usize;
        if self.rows.len() <= idx {
            self.rows.resize(idx + 1, Bucket::default());
        }
        &mut self.rows[idx]
    }

    /// Attribute a busy span to every window it overlaps.
    fn add_busy(&mut self, start_ns: u64, end_ns: u64) {
        let w = self.window_ns;
        let mut at = start_ns;
        while at < end_ns {
            let window_end = (at / w + 1) * w;
            let upto = window_end.min(end_ns);
            self.bucket(SimTime::from_nanos(at)).busy_ns += upto - at;
            at = upto;
        }
    }

    fn close_pcpu(&mut self, p: PcpuId, t: SimTime) {
        let i = p.0 as usize;
        if let Some(start) = self.open.get_mut(i).and_then(Option::take) {
            self.add_busy(start, t.as_nanos());
        }
    }

    fn render(&self) -> String {
        let json = self.path.extension().is_some_and(|e| e == "json");
        let window_s = self.window_ns as f64 / 1e9;
        let capacity_ns = self.window_ns.saturating_mul(self.n_pcpus as u64).max(1);
        let mut out = String::new();
        if json {
            out.push_str("[\n");
        } else {
            out.push_str(
                "window_start_us,exits,timer_exits,exits_per_sec,timer_exits_per_sec,\
                 injections,virtual_ticks,dispatches,preempts,wakeups,host_ticks,\
                 busy_frac,idle_frac\n",
            );
        }
        for (i, b) in self.rows.iter().enumerate() {
            let start_us = i as u64 * self.window_ns / 1_000;
            let busy = (b.busy_ns as f64 / capacity_ns as f64).min(1.0);
            if json {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&format!(
                    "{{\"window_start_us\":{start_us},\"exits\":{},\"timer_exits\":{},\
                     \"exits_per_sec\":{:.1},\"timer_exits_per_sec\":{:.1},\
                     \"injections\":{},\"virtual_ticks\":{},\"dispatches\":{},\
                     \"preempts\":{},\"wakeups\":{},\"host_ticks\":{},\
                     \"busy_frac\":{:.6},\"idle_frac\":{:.6}}}",
                    b.exits,
                    b.timer_exits,
                    b.exits as f64 / window_s,
                    b.timer_exits as f64 / window_s,
                    b.injections,
                    b.virtual_ticks,
                    b.dispatches,
                    b.preempts,
                    b.wakeups,
                    b.host_ticks,
                    busy,
                    1.0 - busy,
                ));
            } else {
                out.push_str(&format!(
                    "{start_us},{},{},{:.1},{:.1},{},{},{},{},{},{},{:.6},{:.6}\n",
                    b.exits,
                    b.timer_exits,
                    b.exits as f64 / window_s,
                    b.timer_exits as f64 / window_s,
                    b.injections,
                    b.virtual_ticks,
                    b.dispatches,
                    b.preempts,
                    b.wakeups,
                    b.host_ticks,
                    busy,
                    1.0 - busy,
                ));
            }
        }
        if json {
            out.push_str("\n]\n");
        }
        out
    }
}

impl EventSink for TimeSeriesSink {
    fn on_event(&mut self, t: SimTime, ev: &SimEvent) {
        match *ev {
            SimEvent::VmExit { reason, .. } => {
                let b = self.bucket(t);
                b.exits += 1;
                if reason.is_timer_related() {
                    b.timer_exits += 1;
                }
            }
            SimEvent::Inject { virtual_tick, .. } => {
                let b = self.bucket(t);
                b.injections += 1;
                if virtual_tick {
                    b.virtual_ticks += 1;
                }
            }
            SimEvent::Dispatch { pcpu, .. } => {
                self.bucket(t).dispatches += 1;
                let i = pcpu.0 as usize;
                if self.open.len() <= i {
                    self.open.resize(i + 1, None);
                }
                self.n_pcpus = self.n_pcpus.max(i + 1);
                self.open[i] = Some(t.as_nanos());
            }
            SimEvent::Preempt { pcpu, .. } => {
                self.bucket(t).preempts += 1;
                self.close_pcpu(pcpu, t);
            }
            SimEvent::IdleEnter { pcpu, .. } => {
                self.close_pcpu(pcpu, t);
            }
            SimEvent::IdleExit { .. } => {
                self.bucket(t).wakeups += 1;
            }
            SimEvent::HostTick { .. } => {
                self.bucket(t).host_ticks += 1;
            }
            _ => {}
        }
    }

    fn finish(&mut self, end: SimTime) {
        for i in 0..self.open.len() {
            self.close_pcpu(PcpuId(i as u32), end);
        }
        let body = self.render();
        if let Err(e) = std::fs::write(&self.path, body) {
            eprintln!(
                "PARATICK_TIMESERIES: write {} failed: {e}",
                self.path.display()
            );
        }
    }
}

// ---------------------------------------------------------------------
// Environment wiring
// ---------------------------------------------------------------------

// A run may construct many engines (experiments iterate, benches fan out
// across rayon workers); only the first engine in the process claims each
// output path, so parallel runs don't clobber one file.
static TRACE_CLAIMED: AtomicBool = AtomicBool::new(false);
static TIMESERIES_CLAIMED: AtomicBool = AtomicBool::new(false);

/// Sinks requested via `PARATICK_TRACE` / `PARATICK_TIMESERIES` (both
/// read through the typed [`crate::config::EnvConfig`] loader).
pub fn sinks_from_env(n_pcpus: usize) -> Vec<Box<dyn EventSink>> {
    let Ok(env) = crate::config::EnvConfig::get() else {
        // A malformed environment is reported by `Engine::new`; the
        // sink attachment just declines.
        return Vec::new();
    };
    let mut sinks: Vec<Box<dyn EventSink>> = Vec::new();
    if let Some(path) = &env.trace {
        if !TRACE_CLAIMED.swap(true, Ordering::SeqCst) {
            match PerfettoSink::create(path.clone()) {
                Ok(s) => sinks.push(Box::new(s)),
                Err(e) => eprintln!("PARATICK_TRACE: cannot create {}: {e}", path.display()),
            }
        }
    }
    if let Some(path) = &env.timeseries {
        if !TIMESERIES_CLAIMED.swap(true, Ordering::SeqCst) {
            sinks.push(Box::new(TimeSeriesSink::new(
                path.clone(),
                env.timeseries_window_us,
                n_pcpus,
            )));
        }
    }
    sinks
}

/// `PARATICK_PROF=1`: time each event kind with the wall clock.
pub fn prof_wall_enabled() -> bool {
    crate::config::EnvConfig::get().map(|e| e.prof).unwrap_or(false)
}

/// Would any observability sink attach to the next engine in this
/// process? Runs whose events feed a sink must bypass the run cache — a
/// cache hit skips the simulation, so no events would ever reach the
/// sink and the requested trace/time-series file would silently not
/// appear.
pub fn any_sink_requested() -> bool {
    match crate::config::EnvConfig::get() {
        Ok(env) => {
            (env.trace.is_some() && !TRACE_CLAIMED.load(Ordering::SeqCst))
                || (env.timeseries.is_some() && !TIMESERIES_CLAIMED.load(Ordering::SeqCst))
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paratick_vmm::ExitReason;

    fn v(vm: u32, vcpu: u32) -> VcpuId {
        VcpuId::new(vm, vcpu)
    }

    #[test]
    fn trace_sink_renders_legacy_formats() {
        assert_eq!(
            TraceSink::render(&SimEvent::VmExit {
                vcpu: v(0, 1),
                reason: ExitReason::Hlt,
                pollution_ns: 12,
            }),
            "vm0:vcpu1 exit hlt"
        );
        assert_eq!(
            TraceSink::render(&SimEvent::Dispatch {
                vcpu: v(0, 0),
                pcpu: PcpuId(0),
                run_queue: 3,
            }),
            "vm0:vcpu0 dispatch on pcpu0"
        );
        assert_eq!(
            TraceSink::render(&SimEvent::IdleExit {
                vcpu: v(1, 2),
                pcpu: PcpuId(4),
                idle_ns: 100,
            }),
            "vm1:vcpu2 wake"
        );
        assert_eq!(
            TraceSink::render(&SimEvent::WorkloadDone { vm: 7 }),
            "vm7 workload done"
        );
    }

    #[test]
    fn trace_sink_records_into_shared_buffer() {
        let (mut sink, buf) = TraceSink::new(16);
        sink.on_event(
            SimTime::from_micros(2),
            &SimEvent::TimerCancel { vcpu: v(0, 0) },
        );
        let dump = buf.borrow().dump();
        assert!(dump.contains("vm0:vcpu0 timer cancel"), "got: {dump}");
    }

    #[test]
    fn timeseries_windows_and_busy_fraction() {
        let mut ts = TimeSeriesSink::new(PathBuf::from("unused.csv"), 1_000, 1);
        let t0 = SimTime::ZERO;
        ts.on_event(
            t0,
            &SimEvent::Dispatch {
                vcpu: v(0, 0),
                pcpu: PcpuId(0),
                run_queue: 0,
            },
        );
        ts.on_event(
            SimTime::from_micros(500),
            &SimEvent::VmExit {
                vcpu: v(0, 0),
                reason: ExitReason::MsrWriteTscDeadline,
                pollution_ns: 0,
            },
        );
        // Span crosses the first window boundary: 1000 µs busy in w0,
        // 500 µs in w1.
        ts.on_event(
            SimTime::from_micros(1_500),
            &SimEvent::IdleEnter {
                vcpu: v(0, 0),
                pcpu: PcpuId(0),
            },
        );
        assert_eq!(ts.rows[0].exits, 1);
        assert_eq!(ts.rows[0].timer_exits, 1);
        assert_eq!(ts.rows[0].busy_ns, 1_000_000);
        assert_eq!(ts.rows[1].busy_ns, 500_000);
        let csv = ts.render();
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("window_start_us,exits,timer_exits"));
        assert!(lines[1].starts_with("0,1,1,1000.0,1000.0,"));
        assert!(lines[1].ends_with("1.000000,0.000000"));
    }

    #[test]
    fn prof_flag_defaults_off() {
        // The test harness does not set PARATICK_PROF.
        assert!(!prof_wall_enabled());
    }
}
