//! # paratick — virtual scheduler ticks, reproduced
//!
//! Library reproduction of *Paratick: Reducing Timer Overhead in Virtual
//! Machines* (Schildermans, Aerts, Shan, Ding — ICPP 2021) as a
//! deterministic full-system simulation.
//!
//! The crate assembles the substrate crates into a runnable system and
//! provides the experiment-facing API:
//!
//! * [`config`] — scenario builder: host shape (the paper's 4-socket /
//!   80-CPU server by default), VM shapes (small/medium/large), tick
//!   modes, cost model.
//! * [`engine`] — the discrete-event system simulator.
//! * [`metrics`] — the three metrics of §6: VM exits, busy CPU cycles
//!   (system throughput) and execution time.
//! * [`experiment`] — paired vanilla-vs-paratick runs with the paper's
//!   repeat-until-stable protocol, producing comparisons.
//! * [`analytic`] — the closed-form exit-count model of §3.1–§3.3
//!   (Table 1 and the tick-vs-tickless crossover rule).
//! * [`obs`] — observability sinks over the engine's structured event
//!   stream: the legacy string trace, a Perfetto/Chrome-trace timeline
//!   exporter (`PARATICK_TRACE=<path>`) and a windowed time-series
//!   sampler (`PARATICK_TIMESERIES=<path>`).
//! * [`audit`] — the always-on runtime invariant auditor: conservation,
//!   state-machine and timer-lifecycle checks over the event stream,
//!   reported in [`RunMetrics::audit`](metrics::RunMetrics::audit).
//! * [`report`] — text tables matching the paper's presentation.
//!
//! Fault injection (`HostConfig::faults` / `PARATICK_FAULTS=<spec>`)
//! deterministically schedules timer-path faults — lost and coalesced
//! timer IRQs, TSC drift, exit-cost spikes, preemption storms, failing
//! hypercalls — and the guest degrades gracefully (TSC-deadline →
//! LAPIC oneshot, paratick → dynticks-idle). See `docs/ROBUSTNESS.md`.
//!
//! ## Quickstart
//!
//! ```
//! use paratick::prelude::*;
//!
//! // A 1-vCPU VM running a tiny sequential PARSEC-like workload,
//! // dynticks vs paratick.
//! let profile = paratick_workloads::parsec::profile("swaptions").unwrap();
//! let build = |mode| {
//!     Scenario::new(HostConfig::small(2))
//!         .vm(
//!             VmConfig::with_vcpus(1).mode(mode),
//!             paratick_workloads::parsec::workload(profile, 1, 0.01),
//!         )
//!         .seed(7)
//! };
//! let vanilla = Engine::run(build(TickMode::DynticksIdle)).unwrap();
//! let para = Engine::run(build(TickMode::Paratick)).unwrap();
//! assert!(para.total_exits() < vanilla.total_exits());
//! assert!(vanilla.audit.is_clean() && para.audit.is_clean());
//! ```

pub mod analytic;
pub mod audit;
pub mod cache;
pub mod config;
pub mod engine;
pub mod experiment;
pub mod metrics;
pub mod obs;
pub mod report;
pub mod sweep;

pub use audit::{AuditReport, AuditViolation};
pub use cache::RunCache;
pub use config::{EnvConfig, EnvError, HostConfig, RunUntil, Scenario, VmConfig};
pub use engine::Engine;
pub use experiment::{Comparison, Experiment};
pub use metrics::{EngineProfile, RunMetrics, VmMetrics};
pub use paratick_vmm::{FaultConfig, FaultKind, FaultStats, SimError, TimerBackend};
pub use sweep::{Sweep, SweepReport};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::analytic;
    pub use crate::audit::{AuditReport, AuditViolation};
    pub use crate::cache::RunCache;
    pub use crate::config::{EnvConfig, EnvError, HostConfig, RunUntil, Scenario, VmConfig};
    pub use crate::engine::Engine;
    pub use crate::experiment::{Comparison, Experiment};
    pub use crate::sweep::{Sweep, SweepReport};
    pub use crate::metrics::{EngineProfile, RunMetrics, VmMetrics};
    pub use crate::obs;
    pub use crate::report;
    pub use paratick_guest::TickMode;
    pub use paratick_hw::DeviceKind;
    pub use paratick_sim::{Freq, SimDuration, SimTime};
    pub use paratick_vmm::{
        CostModel, EventKind, EventSink, ExitReason, FaultConfig, FaultKind, FaultStats, SimError,
        SimEvent, TimerBackend,
    };
    pub use paratick_workloads::VmWorkload;
}
