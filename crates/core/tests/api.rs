//! Public-API tests of the core crate: metrics serialization, the
//! experiment runner's stability protocol, analytic/simulated
//! agreement.

use paratick::analytic::{self, VmShape};
use paratick::experiment::Experiment;
use paratick::prelude::*;
use paratick_workloads::{parsec, VmWorkload};

#[test]
fn run_metrics_serialize_to_json_and_back() {
    let profile = parsec::profile("canneal").unwrap();
    let m = Engine::run(
        Scenario::new(HostConfig::small(2))
            .vm(
                VmConfig::with_vcpus(2).mode(TickMode::Paratick),
                parsec::workload(profile, 2, 0.01),
            )
            .seed(1),
    ).unwrap();
    use paratick_sim::{FromJson, Json, ToJson};
    let json = m.to_json().to_string_pretty();
    assert!(json.contains("exits"));
    let back = RunMetrics::from_json(&Json::parse(&json).expect("parse")).expect("deserialize");
    assert_eq!(back.total_exits(), m.total_exits());
    assert_eq!(back.execution_time(), m.execution_time());
    assert_eq!(back.per_vm.len(), 1);
    assert_eq!(back.per_vm[0].mode, TickMode::Paratick);
    // Byte-stability: re-serializing the round-tripped value reproduces
    // the exact file — the property warm cache hits rely on.
    assert_eq!(back.to_json().to_string_pretty(), json);
}

#[test]
fn experiment_stability_protocol_respects_bounds() {
    let profile = *parsec::profile("swaptions").unwrap();
    let exp = Experiment::new("bounds", move |mode, seed| {
        Scenario::new(HostConfig::small(1))
            .vm(
                VmConfig::with_vcpus(1).mode(mode),
                parsec::workload(&profile, 1, 0.005),
            )
            .seed(seed)
    })
    .iterations(2, 4);
    let c = exp.run().unwrap();
    assert!(c.baseline.iterations >= 2);
    assert!(c.baseline.iterations <= 4);
    assert_eq!(c.baseline.iterations, c.treatment.iterations);
}

#[test]
fn analytic_and_simulation_agree_on_w1_periodic() {
    // The strongest cross-validation in the repo: the closed-form count
    // for an idle periodic-tick VM matches the full simulator exactly.
    let mut s = Scenario::new(HostConfig {
        sockets: 1,
        pcpus_per_socket: 16,
        ..Default::default()
    })
    .until(RunUntil::Time(SimTime::from_secs(2)))
    .seed(3);
    s = s.vm(
        VmConfig::with_vcpus(16).mode(TickMode::Periodic).spanning(1),
        VmWorkload::idle("w1"),
    );
    let m = Engine::run(s).unwrap();
    // Published-table accounting: 1 timer exit per vCPU per tick.
    let expected = 16 * 250 * 2;
    assert_eq!(m.timer_exits(), expected);
    // And the idle dynticks VM takes none (±boot).
    let mut s2 = Scenario::new(HostConfig {
        sockets: 1,
        pcpus_per_socket: 16,
        ..Default::default()
    })
    .until(RunUntil::Time(SimTime::from_secs(2)))
    .seed(3);
    s2 = s2.vm(
        VmConfig::with_vcpus(16)
            .mode(TickMode::DynticksIdle)
            .spanning(1),
        VmWorkload::idle("w1"),
    );
    let m2 = Engine::run(s2).unwrap();
    assert!(m2.timer_exits() < 40);
}

#[test]
fn analytic_formulas_cover_table1_scenarios() {
    // With the formulas as printed (factor 2), W1 and W2 periodic.
    let w1 = [VmShape::idle(16, 250)];
    assert_eq!(analytic::formula_periodic_exits(10.0, &w1), 80_000.0);
    let w2 = [VmShape::idle(16, 250); 4];
    assert_eq!(analytic::formula_periodic_exits(10.0, &w2), 320_000.0);
    // Tickless on idle VMs: zero regardless of the factor.
    assert_eq!(analytic::formula_tickless_exits(10.0, &w2), 0.0);
}

#[test]
fn report_renders_full_comparison_pipeline() {
    use paratick::experiment::aggregate;
    let profile = *parsec::profile("canneal").unwrap();
    let exp = Experiment::new("canneal", move |mode, seed| {
        Scenario::new(HostConfig::small(2))
            .vm(
                VmConfig::with_vcpus(2).mode(mode),
                parsec::workload(&profile, 2, 0.01),
            )
            .seed(seed)
    })
    .iterations(2, 2);
    let c = exp.run().unwrap();
    let table = paratick::report::comparison_table(std::slice::from_ref(&c));
    assert!(table.contains("canneal"));
    assert!(table.contains('%'));
    let agg = aggregate("avg", &[c]);
    assert!(agg.exits_pct.is_finite());
}

#[test]
fn t_idle_percentiles_populated() {
    let profile = parsec::profile("streamcluster").unwrap();
    let m = Engine::run(
        Scenario::new(HostConfig::small(4))
            .vm(
                VmConfig::with_vcpus(4).mode(TickMode::DynticksIdle),
                parsec::workload(profile, 4, 0.02),
            )
            .seed(5),
    ).unwrap();
    let vm = &m.per_vm[0];
    let p50 = vm.p50_idle_period().expect("idle periods recorded");
    let p99 = vm.p99_idle_period().unwrap();
    assert!(p50 <= p99);
    assert!(p50 > SimDuration::ZERO);
    // Barrier workload: microsecond-scale idle periods (the §3.3 regime).
    assert!(p50 < SimDuration::from_millis(4), "p50 {p50}");
}
