//! Behavioural integration tests of the engine: feature knobs, exit
//! composition, overcommit, device classes.

use paratick::prelude::*;
use paratick_suite::{custom_vm, idle_vms, tiny_fio, tiny_parsec};
use paratick_workloads::models::{ComputeThread, FioThread, SleeperThread};
use paratick_workloads::ThreadModel;

/// Halt polling burns host cycles without changing the workload.
#[test]
fn halt_polling_burns_cycles() {
    let spec = paratick_workloads::FioSpec::new(paratick_workloads::FioPattern::SeqRead, 16384, 2 << 20);
    let run = |halt_poll: bool| {
        let host = HostConfig {
            halt_poll,
            ..HostConfig::small(1)
        };
        Engine::run(
            Scenario::new(host)
                .vm(
                    VmConfig::with_vcpus(1).mode(TickMode::DynticksIdle),
                    paratick_workloads::fio::workload(&spec),
                )
                .seed(5),
        ).unwrap()
    };
    let off = run(false);
    let on = run(true);
    assert!(
        on.busy_cycles() > off.busy_cycles(),
        "halt polling must burn cycles: {} vs {}",
        on.busy_cycles().get(),
        off.busy_cycles().get()
    );
}

/// APIC virtualization removes the EOI-write exits entirely.
#[test]
fn apicv_removes_eoi_exits() {
    let run = |apicv: bool| {
        let mut s = tiny_fio(TickMode::DynticksIdle, 6);
        s.host.apicv = apicv;
        Engine::run(s).unwrap()
    };
    let legacy = run(false);
    let virt = run(true);
    assert!(legacy.system.exits.get(ExitReason::EoiWrite) > 0);
    assert_eq!(virt.system.exits.get(ExitReason::EoiWrite), 0);
    assert!(virt.total_exits() < legacy.total_exits());
}

/// PLE produces pause-loop exits only when enabled and only under lock
/// contention.
#[test]
fn ple_exit_generation() {
    use paratick_workloads::models::SyncRateThread;
    let build = |ple: bool| {
        let threads: Vec<Box<dyn ThreadModel>> = (0..8)
            .map(|i| {
                Box::new(SyncRateThread::new(
                    format!("t{i}"),
                    SimDuration::from_millis(40),
                    4_000.0,
                    SimDuration::from_micros(4),
                    1,
                )) as Box<dyn ThreadModel>
            })
            .collect();
        let mut s = custom_vm(threads, 8, TickMode::DynticksIdle, 7);
        s.host.ple = ple;
        s
    };
    let off = Engine::run(build(false)).unwrap();
    let on = Engine::run(build(true)).unwrap();
    assert_eq!(off.system.exits.get(ExitReason::PauseLoop), 0);
    assert!(
        on.system.exits.get(ExitReason::PauseLoop) > 0,
        "contended locks must trigger PLE exits when enabled"
    );
}

/// Paratick costs a single boot hypercall per vCPU.
#[test]
fn paratick_boot_hypercalls() {
    let m = Engine::run(tiny_parsec("swaptions", 4, TickMode::Paratick, 8)).unwrap();
    assert_eq!(m.system.exits.get(ExitReason::Hypercall), 4);
    let v = Engine::run(tiny_parsec("swaptions", 4, TickMode::DynticksIdle, 8)).unwrap();
    assert_eq!(v.system.exits.get(ExitReason::Hypercall), 0);
}

/// Overcommit: 4 VMs x 4 vCPUs on 2 pCPUs completes, time-shares, and
/// still shows the paratick win.
#[test]
fn overcommit_time_sharing() {
    let build = |mode: TickMode| {
        let mut s = Scenario::new(HostConfig::small(2)).seed(9);
        for _ in 0..4 {
            s = s.vm(
                VmConfig::with_vcpus(4).mode(mode).spanning(1),
                paratick_workloads::parsec::workload(
                    paratick_workloads::parsec::profile("canneal").unwrap(),
                    4,
                    0.01,
                ),
            );
        }
        s
    };
    let van = Engine::run(build(TickMode::DynticksIdle)).unwrap();
    let par = Engine::run(build(TickMode::Paratick)).unwrap();
    assert!(van.per_vm.iter().all(|v| v.finished_at.is_some()));
    assert!(par.timer_exits() < van.timer_exits());
    // Time-sharing means external-interrupt (host tick) exits exist.
    assert!(van.system.exits.get(ExitReason::ExternalInterrupt) > 0);
}

/// Device classes order as expected end-to-end (HDD slowest).
#[test]
fn device_classes_order_execution_time() {
    let mut times = Vec::new();
    for device in [DeviceKind::Hdd, DeviceKind::SataSsd, DeviceKind::NvmeSsd] {
        let spec =
            paratick_workloads::FioSpec::new(paratick_workloads::FioPattern::RndRead, 16384, 1 << 20);
        let mut cfg = VmConfig::with_vcpus(1).mode(TickMode::DynticksIdle);
        cfg.device = device;
        let m = Engine::run(
            Scenario::new(HostConfig::small(1))
                .vm(cfg, paratick_workloads::fio::workload(&spec))
                .seed(10),
        ).unwrap();
        times.push(m.execution_time());
    }
    assert!(times[0] > times[1], "HDD {} !> SATA {}", times[0], times[1]);
    assert!(times[1] > times[2], "SATA {} !> NVMe {}", times[1], times[2]);
}

/// Sleeping threads are woken by the timer path in every mode, and the
/// workload completes (soft-timer plumbing end to end).
#[test]
fn sleepers_complete_in_all_modes() {
    for mode in [TickMode::Periodic, TickMode::DynticksIdle, TickMode::Paratick] {
        let threads: Vec<Box<dyn ThreadModel>> = vec![
            Box::new(SleeperThread::new(
                "sleeper",
                SimDuration::from_millis(3),
                0.2,
                SimDuration::from_micros(30),
                50,
            )),
            Box::new(ComputeThread::new(
                "worker",
                SimDuration::from_millis(30),
                SimDuration::from_micros(400),
                0.2,
            )),
        ];
        let m = Engine::run(custom_vm(threads, 2, mode, 12)).unwrap();
        assert!(
            m.per_vm[0].finished_at.is_some(),
            "{mode}: sleeper workload deadlocked"
        );
        // ~50 sleeps of ~3 ms: the run lasts at least 150 ms.
        assert!(m.execution_time() >= SimDuration::from_millis(140), "{mode}");
    }
}

/// Host tick exits only accrue while vCPUs actually run: an idle system
/// takes (almost) none.
#[test]
fn host_tick_paused_on_idle_pcpus() {
    let m = Engine::run(idle_vms(1, 4, TickMode::DynticksIdle, 5)).unwrap();
    assert!(
        m.system.exits.get(ExitReason::ExternalInterrupt) < 10,
        "idle pCPUs must not take host-tick exits: {}",
        m.system.exits.get(ExitReason::ExternalInterrupt)
    );
}

/// Mixed-mode hosting: a paratick VM and a dynticks VM coexist; the
/// host-side hook only touches the declared guest.
#[test]
fn mixed_mode_vms_coexist() {
    let profile = paratick_workloads::parsec::profile("canneal").unwrap();
    let m = Engine::run(
        Scenario::new(HostConfig::small(4))
            .vm(
                VmConfig::with_vcpus(2).mode(TickMode::Paratick),
                paratick_workloads::parsec::workload(profile, 2, 0.02),
            )
            .vm(
                VmConfig::with_vcpus(2).mode(TickMode::DynticksIdle),
                paratick_workloads::parsec::workload(profile, 2, 0.02),
            )
            .seed(13),
    ).unwrap();
    let para_vm = &m.per_vm[0];
    let dyn_vm = &m.per_vm[1];
    assert!(para_vm.virtual_ticks > 0, "paratick VM got no virtual ticks");
    assert_eq!(dyn_vm.virtual_ticks, 0, "dynticks VM must get none");
    assert_eq!(para_vm.exits.timer_related(), 0);
    assert!(dyn_vm.exits.timer_related() > 0);
    assert!(m.per_vm.iter().all(|v| v.finished_at.is_some()));
}

/// An I/O thread migrated across vCPUs still gets its completions.
#[test]
fn io_completion_follows_thread() {
    let threads: Vec<Box<dyn ThreadModel>> = vec![
        Box::new(FioThread::new(
            "reader",
            paratick_hw::IoOp::Read,
            false,
            4096,
            4096 * 200,
            1 << 30,
            SimDuration::from_micros(3),
        )),
        Box::new(ComputeThread::new(
            "noise",
            SimDuration::from_millis(20),
            SimDuration::from_micros(200),
            0.5,
        )),
    ];
    let m = Engine::run(custom_vm(threads, 2, TickMode::Paratick, 14)).unwrap();
    assert!(m.per_vm[0].finished_at.is_some());
    assert_eq!(m.system.exits.get(ExitReason::IoKick), 200);
}

/// The engine's event trace records exits, wakes and dispatches in
/// order (post-mortem debugging surface).
#[test]
fn trace_captures_event_stream() {
    let (m, dump) = Engine::run_traced(tiny_fio(TickMode::Paratick, 15), 4096).unwrap();
    assert!(m.per_vm[0].finished_at.is_some());
    assert!(dump.contains("exit io_kick"), "kick exits traced");
    assert!(dump.contains("exit hlt"), "hlt exits traced");
    assert!(dump.contains("wake"), "wakes traced");
    assert!(dump.contains("dispatch on pcpu0"), "dispatches traced");
    // Untraced runs are unaffected and produce identical metrics.
    let plain = Engine::run(tiny_fio(TickMode::Paratick, 15)).unwrap();
    assert_eq!(plain.total_exits(), m.total_exits());
    assert_eq!(plain.execution_time(), m.execution_time());
}

/// Overcommit fairness: two identical VMs time-sharing the same pCPUs
/// finish within a reasonable factor of each other (the host scheduler
/// round-robins slices rather than starving one VM).
#[test]
fn overcommitted_vms_progress_fairly() {
    let profile = paratick_workloads::parsec::profile("swaptions").unwrap();
    let mut s = Scenario::new(HostConfig::small(2)).seed(17);
    for _ in 0..2 {
        s = s.vm(
            VmConfig::with_vcpus(2).mode(TickMode::DynticksIdle).spanning(1),
            paratick_workloads::parsec::workload(profile, 2, 0.02),
        );
    }
    let m = Engine::run(s).unwrap();
    let t0 = m.per_vm[0].execution_time().unwrap().as_secs_f64();
    let t1 = m.per_vm[1].execution_time().unwrap().as_secs_f64();
    let ratio = t0.max(t1) / t0.min(t1);
    assert!(ratio < 1.5, "unfair completion: {t0:.4}s vs {t1:.4}s");
    // Both took roughly 2x their dedicated-host time (2x overcommit).
    let solo = Engine::run(
        Scenario::new(HostConfig::small(2)).seed(17).vm(
            VmConfig::with_vcpus(2).mode(TickMode::DynticksIdle).spanning(1),
            paratick_workloads::parsec::workload(profile, 2, 0.02),
        ),
    ).unwrap();
    let solo_t = solo.execution_time().as_secs_f64();
    assert!(
        t0 / solo_t > 1.5 && t0 / solo_t < 3.0,
        "overcommit slowdown {:.2}x",
        t0 / solo_t
    );
}

/// Long-horizon soak: a mixed steady-state system runs for 60 simulated
/// seconds without deadlock, drift or conservation violations.
#[test]
fn soak_sixty_seconds_mixed_system() {
    use paratick_workloads::models::SleeperThread;
    use paratick_workloads::{ThreadModel, VmWorkload};
    let mut s = Scenario::new(HostConfig::small(8))
        .until(RunUntil::Time(SimTime::from_secs(60)))
        .seed(2077);
    // A periodic-service VM, a paratick-service VM and two idle VMs.
    for (i, mode) in [TickMode::DynticksIdle, TickMode::Paratick].into_iter().enumerate() {
        let threads: Vec<Box<dyn ThreadModel>> = (0..4)
            .map(|k| {
                Box::new(SleeperThread::new(
                    format!("svc{i}-{k}"),
                    SimDuration::from_millis(5),
                    0.4,
                    SimDuration::from_micros(200),
                    11_000, // ~55 s of 5 ms sleeps
                )) as Box<dyn ThreadModel>
            })
            .collect();
        s = s.vm(
            VmConfig::with_vcpus(4).mode(mode).spanning(1),
            VmWorkload {
                name: format!("svc{i}"),
                threads,
                num_locks: 1,
                num_barriers: 0,
            },
        );
    }
    s = s.vm(
        VmConfig::with_vcpus(8).mode(TickMode::Periodic).spanning(1),
        VmWorkload::idle("bg"),
    );
    let m = Engine::run(s).unwrap();
    assert_eq!(m.duration, SimTime::from_secs(60));
    // The periodic idle VM alone contributes 8 x 250 x 60 timer exits.
    assert!(m.timer_exits() > 100_000, "{}", m.timer_exits());
    // Conservation verified by SystemStats::collect; spot-check shape.
    assert!(m.system.cycles.busy() > SimDuration::from_secs(1));
}

/// A 1000 Hz host carrying a 250 Hz paratick guest: entry-time
/// injection alone delivers the guest rate (the host tick is an exact
/// multiple, §4.1's easy case) — no preemption-timer cadence needed.
#[test]
fn fast_host_tick_carries_slow_guest() {
    let threads: Vec<Box<dyn ThreadModel>> = vec![Box::new(ComputeThread::new(
        "spin",
        SimDuration::from_millis(400),
        SimDuration::from_millis(1),
        0.0,
    ))];
    let mut host = HostConfig::small(1);
    host.host_hz = Freq::hz(1000);
    let m = Engine::run(
        Scenario::new(host)
            .vm(
                VmConfig::with_vcpus(1).mode(TickMode::Paratick),
                paratick_workloads::VmWorkload {
                    name: "spin".into(),
                    threads,
                    num_locks: 1,
                    num_barriers: 0,
                },
            )
            .seed(23),
    ).unwrap();
    // ~100 virtual ticks over 400 ms at the guest's 250 Hz — not 400.
    assert!(
        (80..=130).contains(&m.system.virtual_ticks),
        "virtual ticks {}",
        m.system.virtual_ticks
    );
    assert_eq!(m.system.exits.get(ExitReason::PreemptionTimer), 0);
    // The host ticks 4x as often: external-interrupt exits reflect it.
    assert!(
        m.system.exits.get(ExitReason::ExternalInterrupt) >= 300,
        "{}",
        m.system.exits.get(ExitReason::ExternalInterrupt)
    );
}

/// A horizon shorter than the workload truncates cleanly: metrics
/// report the horizon, conservation still holds, nothing panics.
#[test]
fn horizon_truncates_unfinished_workload() {
    let profile = paratick_workloads::parsec::profile("swaptions").unwrap();
    let m = Engine::run(
        Scenario::new(HostConfig::small(1))
            .vm(
                VmConfig::with_vcpus(1).mode(TickMode::DynticksIdle),
                paratick_workloads::parsec::workload(profile, 1, 1.0), // ~400 ms of work
            )
            .until(RunUntil::Time(SimTime::from_millis(50)))
            .seed(29),
    ).unwrap();
    assert_eq!(m.duration, SimTime::from_millis(50));
    assert!(m.per_vm[0].finished_at.is_none(), "cannot have finished");
    assert_eq!(m.execution_time(), SimDuration::from_millis(50));
    assert!(m.system.cycles.busy() > SimDuration::from_millis(40));
}
