//! Integration tests of the content-addressed run cache: hit/miss
//! byte-identity, key invalidation, and the never-cached classes
//! (faulted, traced, disabled).

use paratick::cache::{run_cached, CacheOutcome, RunCache, ENGINE_VERSION};
use paratick::prelude::*;
use paratick_sim::ToJson;
use paratick_suite::tiny_fio;
use paratick_vmm::{FaultConfig, FaultKind};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("paratick-cache-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every `.json` entry under a cache directory (two-level shard layout).
fn entries(dir: &PathBuf) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(shards) = std::fs::read_dir(dir) else {
        return out;
    };
    for shard in shards.flatten() {
        if let Ok(files) = std::fs::read_dir(shard.path()) {
            for f in files.flatten() {
                if f.path().extension().is_some_and(|e| e == "json") {
                    out.push(f.path());
                }
            }
        }
    }
    out
}

/// A warm hit deserializes to metrics byte-identical to the cold miss
/// that stored them — the property the artifact-diff check relies on.
#[test]
fn warm_hit_is_byte_identical_to_cold_miss() {
    let dir = temp_dir("roundtrip");
    let cache = RunCache::new(&dir);

    let (cold, outcome) = cache.run(tiny_fio(TickMode::Paratick, 21)).unwrap();
    assert_eq!(outcome, CacheOutcome::Miss, "cold store must miss");
    assert_eq!(entries(&dir).len(), 1, "miss persists one entry");

    let (warm, outcome) = cache.run(tiny_fio(TickMode::Paratick, 21)).unwrap();
    assert_eq!(outcome, CacheOutcome::Hit, "second run must hit");
    assert_eq!(
        warm.to_json().to_string_pretty(),
        cold.to_json().to_string_pretty(),
        "warm metrics must serialize byte-identically to the cold run"
    );
    assert_eq!(warm.total_exits(), cold.total_exits());
    assert_eq!(warm.events_dispatched, cold.events_dispatched);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Changing the engine version or any scenario ingredient (seed, tick
/// mode, workload) produces a different key, so stale entries are
/// unreachable rather than served.
#[test]
fn key_invalidates_on_version_and_scenario_changes() {
    let base = RunCache::key(&tiny_fio(TickMode::Paratick, 5));
    assert_eq!(base.len(), 64);
    assert_eq!(
        base,
        RunCache::key(&tiny_fio(TickMode::Paratick, 5)),
        "key is deterministic"
    );
    assert_ne!(
        base,
        RunCache::key(&tiny_fio(TickMode::Paratick, 6)),
        "seed is part of the key"
    );
    assert_ne!(
        base,
        RunCache::key(&tiny_fio(TickMode::DynticksIdle, 5)),
        "tick mode is part of the key"
    );
    assert_ne!(
        base,
        RunCache::key_versioned(
            "paratick-9.9.9+simX",
            &tiny_fio(TickMode::Paratick, 5),
            &FaultConfig::off(),
            false,
        ),
        "engine version is part of the key"
    );
    assert_ne!(
        base,
        RunCache::key_versioned(
            ENGINE_VERSION,
            &tiny_fio(TickMode::Paratick, 5),
            &FaultConfig::off(),
            true,
        ),
        "PARATICK_NO_RCU is part of the key (it gates RCU event generation)"
    );
    assert!(
        RunCache::key_versioned(
            ENGINE_VERSION,
            &tiny_fio(TickMode::Paratick, 5),
            &FaultConfig::off(),
            false,
        ) == base,
        "explicit current version matches the default key"
    );

    // A warm cache under one version never answers for another: store
    // under a fake version's key, then look the real key up.
    let dir = temp_dir("versions");
    let cache = RunCache::new(&dir);
    let m = Engine::run(tiny_fio(TickMode::Paratick, 5)).unwrap();
    let old_key = RunCache::key_versioned(
        "paratick-0.0.0+sim0",
        &tiny_fio(TickMode::Paratick, 5),
        &FaultConfig::off(),
        false,
    );
    cache.store(&old_key, &m);
    assert!(
        cache.lookup(&base).is_none(),
        "entry stored under a different engine version must not hit"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fault-injected runs bypass the cache in both directions: nothing is
/// stored, and a prior clean entry for the same scenario is not served.
#[test]
fn faulted_runs_bypass_cache() {
    let dir = temp_dir("faults");
    let cache = RunCache::new(&dir);
    let faulted = || {
        tiny_fio(TickMode::Paratick, 22)
            .faults(FaultConfig::off().with(FaultKind::LostTimerIrq, 200.0))
    };
    let (_, outcome) = cache.run(faulted()).unwrap();
    assert_eq!(outcome, CacheOutcome::Bypass, "faulted run must bypass");
    assert!(entries(&dir).is_empty(), "faulted run must not be stored");
    // And again: still a bypass, never a hit.
    let (_, outcome) = cache.run(faulted()).unwrap();
    assert_eq!(outcome, CacheOutcome::Bypass);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Traced runs (`PARATICK_TRACE`) bypass the cache: the simulation must
/// actually execute so the trace file appears. Uses a subprocess
/// because sink claiming and the env snapshot are process-global.
#[test]
fn traced_runs_bypass_cache() {
    if std::env::var_os("PARATICK_OBS_CHILD").is_some() {
        let m = run_cached(tiny_fio(TickMode::Paratick, 23)).unwrap();
        assert!(m.per_vm[0].finished_at.is_some());
        return;
    }
    let trace = std::env::temp_dir().join(format!("paratick-cache-it-trace-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&trace);
    let cache_dir = temp_dir("traced");
    let status = std::process::Command::new(std::env::current_exe().unwrap())
        .arg("traced_runs_bypass_cache")
        .arg("--exact")
        .env("PARATICK_OBS_CHILD", "1")
        .env("PARATICK_TRACE", &trace)
        .env("PARATICK_CACHE_DIR", &cache_dir)
        .status()
        .expect("re-exec test binary");
    assert!(status.success(), "child run failed");
    assert!(
        std::fs::metadata(&trace).is_ok(),
        "traced run must still simulate and write the trace"
    );
    assert!(
        entries(&cache_dir).is_empty(),
        "traced run must not populate the cache"
    );
    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// `PARATICK_CACHE=0` restores the always-simulate behaviour: nothing
/// is read or written even with a cache directory configured.
#[test]
fn cache_opt_out_disables_storage() {
    if std::env::var_os("PARATICK_OBS_CHILD").is_some() {
        let m = run_cached(tiny_fio(TickMode::Paratick, 24)).unwrap();
        assert!(m.per_vm[0].finished_at.is_some());
        return;
    }
    let cache_dir = temp_dir("optout");
    let status = std::process::Command::new(std::env::current_exe().unwrap())
        .arg("cache_opt_out_disables_storage")
        .arg("--exact")
        .env("PARATICK_OBS_CHILD", "1")
        .env("PARATICK_CACHE", "0")
        .env("PARATICK_CACHE_DIR", &cache_dir)
        .status()
        .expect("re-exec test binary");
    assert!(status.success(), "child run failed");
    assert!(
        entries(&cache_dir).is_empty(),
        "PARATICK_CACHE=0 must not write cache entries"
    );
    let _ = std::fs::remove_dir_all(&cache_dir);
}
