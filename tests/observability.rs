//! Observability integration tests: determinism of the structured event
//! stream, and structural validity of the Chrome-trace/Perfetto export.

use paratick::prelude::*;
use paratick_suite::tiny_fio;
use paratick_vmm::CollectSink;
use std::path::PathBuf;

// ---------------------------------------------------------------------
// Minimal JSON parser (std only; serde_json is reserved for metric
// dumps, and the point here is validating our hand-written writer with
// an independent reader).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing garbage at byte {}", p.i));
        }
        Ok(v)
    }

    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.b
            .get(self.i)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek()? == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut kv = Vec::new();
        if self.peek()? == b'}' {
            self.i += 1;
            return Ok(Json::Obj(kv));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.eat(b':')?;
            kv.push((k, self.value()?));
            match self.peek()? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Ok(Json::Obj(kv));
                }
                c => return Err(format!("expected ',' or '}}', got {:?}", c as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut a = Vec::new();
        if self.peek()? == b']' {
            self.i += 1;
            return Ok(Json::Arr(a));
        }
        loop {
            a.push(self.value()?);
            match self.peek()? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Ok(Json::Arr(a));
                }
                c => return Err(format!("expected ',' or ']', got {:?}", c as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let c = *self
                .b
                .get(self.i)
                .ok_or_else(|| "unterminated string".to_string())?;
            self.i += 1;
            match c {
                b'"' => return Ok(s),
                b'\\' => {
                    let e = *self
                        .b
                        .get(self.i)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.i += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or_else(|| "short \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.i += 4;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape {:?}", e as char)),
                    }
                }
                _ => s.push(c as char),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[test]
fn mini_json_parser_sanity() {
    let v = Json::parse(r#"{"a":[1,2.5,-3e2],"b":"x\"y","c":true,"d":null}"#).unwrap();
    assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_num(), Some(2.5));
    assert_eq!(v.get("b").unwrap().as_str(), Some("x\"y"));
    assert_eq!(v.get("c"), Some(&Json::Bool(true)));
    assert!(Json::parse("{\"a\":}").is_err());
    assert!(Json::parse("[1,2").is_err());
}

// ---------------------------------------------------------------------
// Chrome-trace structural validation (shared by the direct-sink and
// env-knob tests).
// ---------------------------------------------------------------------

fn validate_chrome_trace(text: &str) {
    let v = Json::parse(text).expect("trace file must be valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("top-level object with a traceEvents array");
    assert!(events.len() > 10, "trace is suspiciously empty");

    let mut thread_names = Vec::new();
    let mut depth: std::collections::HashMap<i64, i64> = Default::default();
    let (mut spans, mut instants, mut counters) = (0u64, 0u64, 0u64);
    let mut instant_names = std::collections::HashSet::new();
    let mut counter_names = std::collections::HashSet::new();
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("event has ph");
        assert_eq!(e.get("pid").and_then(Json::as_num), Some(0.0));
        if ph != "M" {
            let ts = e.get("ts").and_then(Json::as_num).expect("event has ts");
            assert!(ts >= 0.0, "negative timestamp {ts}");
        }
        match ph {
            "M" => {
                if e.get("name").and_then(Json::as_str) == Some("thread_name") {
                    let n = e
                        .get("args")
                        .unwrap()
                        .get("name")
                        .unwrap()
                        .as_str()
                        .unwrap();
                    thread_names.push(n.to_string());
                }
            }
            "B" => {
                spans += 1;
                let tid = e.get("tid").and_then(Json::as_num).unwrap() as i64;
                assert_eq!(e.get("cat").and_then(Json::as_str), Some("vcpu"));
                let name = e.get("name").and_then(Json::as_str).unwrap();
                assert!(name.contains("vcpu"), "span name is a vCPU: {name}");
                *depth.entry(tid).or_insert(0) += 1;
                assert_eq!(depth[&tid], 1, "spans must never nest on a track");
            }
            "E" => {
                let tid = e.get("tid").and_then(Json::as_num).unwrap() as i64;
                *depth.entry(tid).or_insert(0) -= 1;
                assert!(depth[&tid] >= 0, "E without matching B on tid {tid}");
            }
            "i" => {
                instants += 1;
                assert_eq!(e.get("s").and_then(Json::as_str), Some("t"));
                instant_names.insert(e.get("name").unwrap().as_str().unwrap().to_string());
            }
            "C" => {
                counters += 1;
                counter_names.insert(e.get("name").unwrap().as_str().unwrap().to_string());
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(
        thread_names.iter().any(|n| n == "pcpu0"),
        "pcpu0 track announced: {thread_names:?}"
    );
    assert!(spans > 0, "no vCPU spans");
    assert!(instants > 0 && counters > 0);
    assert!(
        depth.values().all(|d| *d == 0),
        "all spans closed at finish: {depth:?}"
    );
    // The tiny_fio run exits on I/O kicks and halts; both must show up
    // as instants, and the counter tracks must exist.
    assert!(instant_names.contains("io_kick"), "{instant_names:?}");
    assert!(instant_names.contains("hlt"), "{instant_names:?}");
    assert!(instant_names.contains("wake"), "{instant_names:?}");
    for c in ["runq", "running_vcpus", "pollution_ns"] {
        assert!(counter_names.contains(c), "missing counter {c}");
    }
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("paratick_obs_{tag}_{}.json", std::process::id()))
}

/// The Perfetto sink, attached directly, writes a structurally valid
/// Chrome trace: balanced spans, announced tracks, instants, counters.
#[test]
fn perfetto_sink_writes_valid_chrome_trace() {
    let path = temp_path("direct");
    let mut e = Engine::new(tiny_fio(TickMode::Paratick, 15)).unwrap();
    e.attach_sink(Box::new(obs::PerfettoSink::create(path.clone()).unwrap()));
    let m = e.run_to_completion().unwrap();
    assert!(m.per_vm[0].finished_at.is_some());
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    validate_chrome_trace(&text);
}

/// The `PARATICK_TRACE` env knob end to end, in a subprocess so the
/// process-global claim and env lookup cannot race other tests.
#[test]
fn paratick_trace_env_knob_writes_valid_chrome_trace() {
    if std::env::var_os("PARATICK_OBS_CHILD").is_some() {
        // Child: the engine picks the sink up from PARATICK_TRACE on
        // its own — nothing is attached explicitly.
        let m = Engine::run(tiny_fio(TickMode::Paratick, 15)).unwrap();
        assert!(m.per_vm[0].finished_at.is_some());
        return;
    }
    let path = temp_path("env");
    let status = std::process::Command::new(std::env::current_exe().unwrap())
        .arg("paratick_trace_env_knob_writes_valid_chrome_trace")
        .arg("--exact")
        .env("PARATICK_OBS_CHILD", "1")
        .env("PARATICK_TRACE", &path)
        .status()
        .expect("re-exec test binary");
    assert!(status.success(), "child run failed");
    let text = std::fs::read_to_string(&path).expect("PARATICK_TRACE wrote the file");
    let _ = std::fs::remove_file(&path);
    validate_chrome_trace(&text);
}

/// The `PARATICK_TIMESERIES` env knob produces the windowed CSV.
#[test]
fn paratick_timeseries_env_knob_writes_csv() {
    if std::env::var_os("PARATICK_OBS_CHILD").is_some() {
        let _ = Engine::run(tiny_fio(TickMode::Paratick, 15)).unwrap();
        return;
    }
    let path = std::env::temp_dir().join(format!("paratick_obs_ts_{}.csv", std::process::id()));
    let status = std::process::Command::new(std::env::current_exe().unwrap())
        .arg("paratick_timeseries_env_knob_writes_csv")
        .arg("--exact")
        .env("PARATICK_OBS_CHILD", "1")
        .env("PARATICK_TIMESERIES", &path)
        .env("PARATICK_TIMESERIES_WINDOW_US", "500")
        .status()
        .expect("re-exec test binary");
    assert!(status.success(), "child run failed");
    let text = std::fs::read_to_string(&path).expect("PARATICK_TIMESERIES wrote the file");
    let _ = std::fs::remove_file(&path);
    let mut lines = text.lines();
    let header = lines.next().unwrap();
    assert!(header.starts_with("window_start_us,exits,timer_exits,"));
    let cols = header.split(',').count();
    let mut rows = 0;
    for line in lines {
        assert_eq!(line.split(',').count(), cols, "ragged row: {line}");
        rows += 1;
    }
    assert!(rows > 1, "expected multiple 500 us windows");
}

// ---------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------

fn collected_run(seed: u64) -> (RunMetrics, String) {
    let mut e = Engine::new(tiny_fio(TickMode::Paratick, seed)).unwrap();
    let (sink, events) = CollectSink::new();
    e.attach_sink(Box::new(sink));
    let m = e.run_to_completion().unwrap();
    let stream = events
        .borrow()
        .iter()
        .map(|(t, ev)| format!("{} {ev:?}\n", t.as_nanos()))
        .collect::<String>();
    (m, stream)
}

/// Two runs of the same seeded scenario produce byte-identical event
/// streams and identical deterministic metrics (wall-clock profiling
/// fields are explicitly excluded — they are allowed to differ).
#[test]
fn seeded_runs_are_byte_identical() {
    let (m1, s1) = collected_run(15);
    let (m2, s2) = collected_run(15);
    assert!(!s1.is_empty(), "event stream captured");
    assert!(s1 == s2, "event streams diverged");
    assert_eq!(m1.total_exits(), m2.total_exits());
    assert_eq!(m1.timer_exits(), m2.timer_exits());
    assert_eq!(m1.events_dispatched, m2.events_dispatched);
    assert_eq!(m1.busy_cycles(), m2.busy_cycles());
    assert_eq!(m1.execution_time(), m2.execution_time());
    assert_eq!(
        m1.profile.queue_depth_high_water,
        m2.profile.queue_depth_high_water
    );
    let counts = |m: &RunMetrics| -> Vec<(String, u64)> {
        m.profile
            .per_kind
            .iter()
            .map(|k| (k.kind.clone(), k.count))
            .collect()
    };
    assert_eq!(counts(&m1), counts(&m2));

    // A different seed must actually change the stream (the equality
    // above is not vacuous).
    let (_, s3) = collected_run(16);
    assert!(s1 != s3, "different seeds produced identical streams");
}

/// The collected stream covers the taxonomy: every major event kind
/// shows up in a small I/O-bound paratick run, and attaching a sink
/// does not perturb the simulation.
#[test]
fn event_stream_covers_taxonomy() {
    let (m, _) = collected_run(15);
    let mut e = Engine::new(tiny_fio(TickMode::Paratick, 15)).unwrap();
    let (sink, events) = CollectSink::new();
    e.attach_sink(Box::new(sink));
    let traced = e.run_to_completion().unwrap();
    let plain = Engine::run(tiny_fio(TickMode::Paratick, 15)).unwrap();
    assert_eq!(plain.total_exits(), traced.total_exits());
    assert_eq!(plain.execution_time(), traced.execution_time());
    assert_eq!(plain.events_dispatched, m.events_dispatched);

    let mut seen = [0u64; EventKind::COUNT];
    for (_, ev) in events.borrow().iter() {
        seen[ev.kind().index()] += 1;
    }
    for kind in [
        EventKind::VmExit,
        EventKind::Dispatch,
        EventKind::IdleEnter,
        EventKind::IdleExit,
        EventKind::Inject,
        EventKind::Hypercall,
        EventKind::WorkloadDone,
    ] {
        assert!(
            seen[kind.index()] > 0,
            "no {} events in the stream",
            kind.name()
        );
    }
    // Exit counts in the stream reconcile with the metrics.
    assert_eq!(seen[EventKind::VmExit.index()], m.total_exits());
}
