//! Integration tests for the features this reproduction adds beyond the
//! paper's artifact: full-dynticks mode (§2's third strategy) and the
//! §4.1 tick-rate adaptation (the paper's declared future work).

use paratick::prelude::*;
use paratick_suite::{custom_vm, tiny_parsec};
use paratick_workloads::models::ComputeThread;
use paratick_workloads::{ThreadModel, VmWorkload};

fn solo_compute(n: usize, per_thread: SimDuration) -> Vec<Box<dyn ThreadModel>> {
    (0..n)
        .map(|i| {
            Box::new(ComputeThread::new(
                format!("c{i}"),
                per_thread,
                SimDuration::from_millis(1),
                0.1,
            )) as Box<dyn ThreadModel>
        })
        .collect()
}

/// Full dynticks stops busy-CPU ticks for solo tasks: far fewer timer
/// exits than dynticks-idle on a compute-bound guest, more than
/// paratick.
#[test]
fn full_dynticks_solo_compute_ordering() {
    let run = |mode: TickMode| {
        Engine::run(custom_vm(
            solo_compute(4, SimDuration::from_millis(200)),
            4,
            mode,
            3,
        )).unwrap()
    };
    let dynticks = run(TickMode::DynticksIdle);
    let full = run(TickMode::FullDynticks);
    let para = run(TickMode::Paratick);
    assert!(
        full.timer_exits() * 2 < dynticks.timer_exits(),
        "full dynticks {} vs dynticks {}",
        full.timer_exits(),
        dynticks.timer_exits()
    );
    assert!(
        para.timer_exits() <= full.timer_exits(),
        "paratick {} vs full dynticks {}",
        para.timer_exits(),
        full.timer_exits()
    );
}

/// Full dynticks must not starve a thread enqueued on a tickless busy
/// CPU: the kick path restarts the tick and the run completes.
#[test]
fn full_dynticks_no_starvation_under_oversubscription() {
    // 4 threads on 2 vCPUs: every vCPU is contended; without the
    // tick-restart kick the queued threads would never be scheduled.
    let m = Engine::run(custom_vm(
        solo_compute(4, SimDuration::from_millis(60)),
        2,
        TickMode::FullDynticks,
        4,
    )).unwrap();
    assert!(m.per_vm[0].finished_at.is_some(), "starved");
    // Time-slicing happened: the run is roughly 2x the per-thread work.
    assert!(m.execution_time() >= SimDuration::from_millis(110));
}

/// Full dynticks completes every paper workload (engine-level smoke
/// across the mode).
#[test]
fn full_dynticks_runs_parsec() {
    for name in ["dedup", "streamcluster", "swaptions"] {
        let m = Engine::run(tiny_parsec(name, 4, TickMode::FullDynticks, 5)).unwrap();
        assert!(m.per_vm[0].finished_at.is_some(), "{name} did not finish");
    }
}

/// §4.1 rate adaptation: a busy 1000 Hz paratick guest on a 250 Hz host
/// receives its full tick rate with adaptation, a quarter without.
#[test]
fn rate_adaptation_restores_guest_tick_rate() {
    let run = |adapt: bool| {
        let mut host = HostConfig::small(1);
        host.paratick_rate_adapt = adapt;
        let mut cfg = VmConfig::with_vcpus(1).mode(TickMode::Paratick);
        cfg.guest_hz = Freq::hz(1000);
        Engine::run(
            Scenario::new(host)
                .vm(
                    cfg,
                    VmWorkload {
                        name: "spin1k".into(),
                        threads: solo_compute(1, SimDuration::from_millis(200)),
                        num_locks: 1,
                        num_barriers: 0,
                    },
                )
                .seed(6),
        ).unwrap()
    };
    let without = run(false);
    let with = run(true);
    let expected = (with.execution_time().as_secs_f64() * 1000.0) as u64;
    assert!(
        with.system.virtual_ticks >= expected * 9 / 10,
        "adapted guest under-ticked: {} vs ~{expected}",
        with.system.virtual_ticks
    );
    assert!(
        without.system.virtual_ticks < expected / 2,
        "unadapted guest should under-tick: {} vs ~{expected}",
        without.system.virtual_ticks
    );
    // The adaptation costs one preemption-timer exit per tick — still
    // cheaper than the two exits of self-programmed ticks.
    assert!(
        with.system.exits.get(ExitReason::PreemptionTimer) >= expected * 3 / 4,
        "cadence exits missing"
    );
    // Paratick may still program the occasional idle-entry wakeup timer
    // (RCU); the adaptation itself must add no deadline-MSR writes.
    assert!(
        with.system.exits.get(ExitReason::MsrWriteTscDeadline) <= 3,
        "adaptation must not program the deadline MSR: {}",
        with.system.exits.get(ExitReason::MsrWriteTscDeadline)
    );
}

/// Matching rates need no adaptation cadence: no preemption-timer exits
/// on a busy 250 Hz guest.
#[test]
fn matching_rates_use_entry_injection_only() {
    let mut cfg = VmConfig::with_vcpus(1).mode(TickMode::Paratick);
    cfg.guest_hz = Freq::hz(250);
    let m = Engine::run(
        Scenario::new(HostConfig::small(1))
            .vm(
                cfg,
                VmWorkload {
                    name: "spin250".into(),
                    threads: solo_compute(1, SimDuration::from_millis(200)),
                    num_locks: 1,
                    num_barriers: 0,
                },
            )
            .seed(7),
    ).unwrap();
    assert_eq!(m.system.exits.get(ExitReason::PreemptionTimer), 0);
    // ~50 virtual ticks over 200 ms.
    assert!((35..=65).contains(&m.system.virtual_ticks), "{}", m.system.virtual_ticks);
}

/// The NO_HZ_FULL context-tracking tax is visible: full dynticks spends
/// more guest-kernel time than dynticks on a syscall-heavy workload.
#[test]
fn full_dynticks_context_tracking_tax() {
    use paratick_vmm::CycleCategory;
    let run = |mode: TickMode| {
        Engine::run(tiny_parsec("fluidanimate", 4, mode, 8)).unwrap()
            .system
            .cycles
            .get(CycleCategory::GuestOs)
    };
    let dynticks = run(TickMode::DynticksIdle);
    let full = run(TickMode::FullDynticks);
    assert!(
        full > dynticks,
        "context tracking must cost kernel time: {full} vs {dynticks}"
    );
}

/// §5.2.1 staged boot end to end: a paratick guest runs a periodic tick
/// until high-resolution timers arrive, then switches — disabling the
/// boot tick, declaring via hypercall, and ceasing all timer writes.
#[test]
fn staged_boot_switches_from_periodic_to_paratick() {
    let run = |delay_ms: u64| {
        let mut cfg = VmConfig::with_vcpus(1).mode(TickMode::Paratick);
        cfg.hres_boot_delay = SimDuration::from_millis(delay_ms);
        Engine::run(
            Scenario::new(HostConfig::small(1))
                .vm(
                    cfg,
                    VmWorkload {
                        name: "boot".into(),
                        threads: solo_compute(1, SimDuration::from_millis(200)),
                        num_locks: 1,
                        num_barriers: 0,
                    },
                )
                .seed(77),
        ).unwrap()
    };
    let staged = run(100);
    let immediate = run(0);
    // During the first 100 ms the staged guest ticks periodically:
    // ~25 deadline re-arms (+1 disable at the switch) that the
    // immediate guest never performs.
    let staged_msr = staged.system.exits.get(ExitReason::MsrWriteTscDeadline);
    let imm_msr = immediate.system.exits.get(ExitReason::MsrWriteTscDeadline);
    assert!(
        (20..=35).contains(&(staged_msr - imm_msr)),
        "boot-phase deadline writes: staged {staged_msr} vs immediate {imm_msr}"
    );
    // Both declare exactly once.
    assert_eq!(staged.system.exits.get(ExitReason::Hypercall), 1);
    // Virtual ticks only flow after the switch: roughly (exec-100ms)x250.
    let expected_post =
        (staged.execution_time().as_secs_f64() - 0.1) * 250.0;
    let vt = staged.system.virtual_ticks as f64;
    assert!(
        (vt - expected_post).abs() <= expected_post * 0.3 + 5.0,
        "virtual ticks {vt} vs expected ~{expected_post:.0}"
    );
    // Workload outcome identical.
    assert_eq!(
        staged.system.cycles.get(paratick_vmm::CycleCategory::GuestWork),
        immediate.system.cycles.get(paratick_vmm::CycleCategory::GuestWork),
    );
}

/// Staged boot also works for dynticks guests (periodic -> dynticks) and
/// for halted-at-switch vCPUs (lazy switch at next dispatch).
#[test]
fn staged_boot_dynticks_and_idle_vcpus() {
    let mut cfg = VmConfig::with_vcpus(2).mode(TickMode::DynticksIdle);
    cfg.hres_boot_delay = SimDuration::from_millis(50);
    // One busy thread on vCPU 0; vCPU 1 idles through the switch.
    let m = Engine::run(
        Scenario::new(HostConfig::small(2))
            .vm(
                cfg,
                VmWorkload {
                    name: "boot-dyn".into(),
                    threads: solo_compute(1, SimDuration::from_millis(150)),
                    num_locks: 1,
                    num_barriers: 0,
                },
            )
            .seed(78),
    ).unwrap();
    assert!(m.per_vm[0].finished_at.is_some());
    assert_eq!(m.system.exits.get(ExitReason::Hypercall), 0);
    // The idle vCPU ticked periodically during boot: wakeups happened.
    assert!(m.system.wakeups >= 10, "{}", m.system.wakeups);
}

/// The condvar-based bounded-queue pipeline runs end to end through the
/// engine in every tick mode, and paratick beats dynticks on its
/// blocking traffic (the dedup/ferret/x264 shape, §4.2).
#[test]
fn condvar_pipeline_end_to_end() {
    use paratick_workloads::pipeline::{workload, PipelineSpec};
    let spec = PipelineSpec {
        stages: 3,
        workers_per_stage: 2,
        items: 800,
        queue_capacity: 4,
        service: SimDuration::from_micros(50),
        service_cv: 0.8,
    };
    let run = |mode: TickMode| {
        Engine::run(
            Scenario::new(HostConfig::small(6))
                .vm(VmConfig::with_vcpus(6).mode(mode), workload(spec))
                .seed(91),
        ).unwrap()
    };
    let mut results = Vec::new();
    for mode in [
        TickMode::Periodic,
        TickMode::DynticksIdle,
        TickMode::FullDynticks,
        TickMode::Paratick,
    ] {
        let m = run(mode);
        assert!(
            m.per_vm[0].finished_at.is_some(),
            "{mode}: pipeline deadlocked"
        );
        // The pipeline blocks constantly: idle transitions abound.
        assert!(m.system.idle_periods > 500, "{mode}: {}", m.system.idle_periods);
        results.push((mode, m));
    }
    let timer = |mode: TickMode| {
        results
            .iter()
            .find(|(m, _)| *m == mode)
            .unwrap()
            .1
            .timer_exits()
    };
    assert!(timer(TickMode::Paratick) < timer(TickMode::DynticksIdle) / 4);
    // Queue buffering keeps exec times close across modes even though
    // dynticks pays thousands of extra exits (§4.2's critical-path
    // argument, now reproduced with a *real* pipeline).
    let exec = |mode: TickMode| {
        results
            .iter()
            .find(|(m, _)| *m == mode)
            .unwrap()
            .1
            .execution_time()
            .as_secs_f64()
    };
    let ratio = exec(TickMode::DynticksIdle) / exec(TickMode::Paratick);
    assert!(
        (0.95..1.6).contains(&ratio),
        "pipeline exec ratio dynticks/paratick = {ratio:.3}"
    );
}

/// Backpressure works: a tiny queue capacity throttles stage 0 (its
/// workers block on "not full") rather than growing memory; the run
/// still completes with conserved items.
#[test]
fn pipeline_backpressure_with_tiny_queues() {
    use paratick_workloads::pipeline::{workload, PipelineSpec};
    let spec = PipelineSpec {
        stages: 2,
        workers_per_stage: 1,
        items: 300,
        queue_capacity: 1,
        service: SimDuration::from_micros(30),
        service_cv: 0.2,
    };
    let m = Engine::run(
        Scenario::new(HostConfig::small(2))
            .vm(VmConfig::with_vcpus(2).mode(TickMode::Paratick), workload(spec))
            .seed(92),
    ).unwrap();
    assert!(m.per_vm[0].finished_at.is_some());
    // Capacity-1 handoff: blocking is frequent (the exact count depends
    // on how often the peer wakes in time).
    assert!(m.system.idle_periods as u64 > 80, "{}", m.system.idle_periods);
}

/// The §4.1 keep-armed heuristic is observable in metrics: on an
/// I/O+daemon mix, a meaningful share of paratick idle entries reuse an
/// already-armed timer instead of paying another deadline write.
#[test]
fn paratick_reuse_counters_surface() {
    use paratick_workloads::models::{FioThread, SleeperThread};
    let threads: Vec<Box<dyn ThreadModel>> = vec![
        Box::new(FioThread::new(
            "reader",
            paratick_hw::IoOp::Read,
            false,
            4096,
            4096 * 400,
            1 << 30,
            SimDuration::from_micros(3),
        )),
        Box::new(SleeperThread::new(
            "daemon",
            SimDuration::from_millis(2),
            0.3,
            SimDuration::from_micros(40),
            30,
        )),
    ];
    let m = Engine::run(
        Scenario::new(HostConfig::small(1))
            .vm(
                VmConfig::with_vcpus(1).mode(TickMode::Paratick),
                VmWorkload {
                    name: "io+daemon".into(),
                    threads,
                    num_locks: 1,
                    num_barriers: 0,
                },
            )
            .seed(333),
    ).unwrap();
    let vm = &m.per_vm[0];
    assert!(vm.paratick_timers_programmed > 0, "daemon timers must arm");
    assert!(
        vm.paratick_timer_reuse > vm.paratick_timers_programmed,
        "I/O wakes between daemon deadlines should mostly reuse: {} reuse vs {} programmed",
        vm.paratick_timer_reuse,
        vm.paratick_timers_programmed
    );
    // Dynticks guests report zero.
    let d = Engine::run(paratick_suite::tiny_fio(TickMode::DynticksIdle, 3)).unwrap();
    assert_eq!(d.per_vm[0].paratick_timer_reuse, 0);
}
