//! Property-based tests of the whole system engine: random workload
//! compositions must uphold the structural invariants on every run —
//! no deadlock, exact cycle conservation, deterministic replay, and the
//! paper's §4.2 dominance guarantee.

use paratick::prelude::*;
use paratick_workloads::models::{
    BarrierLoop, ComputeThread, FioThread, LockLoop, SleeperThread,
};
use paratick_workloads::{ThreadModel, VmWorkload};
use paratick_sim::propcheck::prelude::*;

/// A compact, generatable description of a random thread.
#[derive(Clone, Debug)]
enum ThreadKind {
    Compute { work_us: u64, grain_us: u64 },
    Lock { work_us: u64, grain_us: u64, cs_us: u64 },
    Barrier { phases: u64, grain_us: u64 },
    Io { ops: u64, block_kb: u64 },
    Sleeper { period_us: u64, wakeups: u64 },
}

fn thread_kind() -> impl Strategy<Value = ThreadKind> {
    prop_oneof![
        (100u64..5_000, 20u64..400).prop_map(|(w, g)| ThreadKind::Compute {
            work_us: w,
            grain_us: g
        }),
        (100u64..3_000, 30u64..300, 1u64..20).prop_map(|(w, g, c)| ThreadKind::Lock {
            work_us: w,
            grain_us: g,
            cs_us: c
        }),
        (2u64..30, 30u64..300).prop_map(|(p, g)| ThreadKind::Barrier {
            phases: p,
            grain_us: g
        }),
        (5u64..80, 1u64..64).prop_map(|(o, b)| ThreadKind::Io {
            ops: o,
            block_kb: b
        }),
        (200u64..4_000, 2u64..30).prop_map(|(p, n)| ThreadKind::Sleeper {
            period_us: p,
            wakeups: n
        }),
    ]
}

fn build_threads(kinds: &[ThreadKind], barrier_parties: usize) -> Vec<Box<dyn ThreadModel>> {
    kinds
        .iter()
        .enumerate()
        .map(|(i, k)| -> Box<dyn ThreadModel> {
            match *k {
                ThreadKind::Compute { work_us, grain_us } => Box::new(ComputeThread::new(
                    format!("c{i}"),
                    SimDuration::from_micros(work_us),
                    SimDuration::from_micros(grain_us),
                    0.4,
                )),
                ThreadKind::Lock {
                    work_us,
                    grain_us,
                    cs_us,
                } => Box::new(LockLoop::new(
                    format!("l{i}"),
                    SimDuration::from_micros(work_us),
                    SimDuration::from_micros(grain_us),
                    0.4,
                    SimDuration::from_micros(cs_us),
                    3,
                )),
                ThreadKind::Barrier { phases, grain_us } => Box::new(BarrierLoop::new(
                    format!("b{i}"),
                    phases * barrier_parties as u64, // same arrivals per party
                    SimDuration::from_micros(grain_us),
                    0.0, // deterministic arrivals so counts match
                    0,
                )),
                ThreadKind::Io { ops, block_kb } => Box::new(FioThread::new(
                    format!("io{i}"),
                    paratick_hw::IoOp::Read,
                    i % 2 == 0,
                    block_kb * 1024,
                    ops * block_kb * 1024,
                    1 << 30,
                    SimDuration::from_micros(2),
                )),
                ThreadKind::Sleeper { period_us, wakeups } => Box::new(SleeperThread::new(
                    format!("s{i}"),
                    SimDuration::from_micros(period_us),
                    0.2,
                    SimDuration::from_micros(10),
                    wakeups,
                )),
            }
        })
        .collect()
}

/// Barriers need every participant to arrive the same number of times;
/// the simplest sound composition is "no barrier threads mixed with
/// differently-shaped barrier threads". We sidestep it by rewriting all
/// barrier threads to a common phase count.
fn normalize_barriers(kinds: &mut [ThreadKind]) {
    let common = kinds.iter().find_map(|k| match k {
        ThreadKind::Barrier { phases, .. } => Some(*phases),
        _ => None,
    });
    if let Some(p) = common {
        for k in kinds.iter_mut() {
            if let ThreadKind::Barrier { phases, .. } = k {
                *phases = p;
            }
        }
    }
}

fn barrier_parties(kinds: &[ThreadKind]) -> usize {
    kinds
        .iter()
        .filter(|k| matches!(k, ThreadKind::Barrier { .. }))
        .count()
}

fn scenario(kinds: &[ThreadKind], vcpus: u32, mode: TickMode, seed: u64) -> Scenario {
    let parties = barrier_parties(kinds).max(1);
    let threads = build_threads(kinds, parties);
    let workload = VmWorkload {
        name: "prop".into(),
        threads,
        num_locks: 3,
        num_barriers: 1,
    };
    // The engine sizes barriers by *live thread count*; restrict barrier
    // participation by replacing VmWorkload barrier semantics: barrier
    // threads all arrive the same number of times, and non-barrier
    // threads never arrive, so a barrier of N parties would deadlock.
    // We therefore only emit barrier threads when *all* threads are
    // barrier threads (enforced by the caller's filter).
    Scenario::new(HostConfig::small(vcpus))
        .vm(VmConfig::with_vcpus(vcpus).mode(mode), workload)
        .seed(seed)
}

/// Mixed barrier/non-barrier compositions would deadlock by
/// construction (a barrier waits for every live thread), so squash
/// barrier threads into compute threads unless all threads are barriers.
fn make_runnable(kinds: &mut [ThreadKind]) {
    let n_barrier = barrier_parties(kinds);
    if n_barrier != kinds.len() {
        for k in kinds.iter_mut() {
            if let ThreadKind::Barrier { phases, grain_us } = *k {
                *k = ThreadKind::Compute {
                    work_us: phases * grain_us,
                    grain_us,
                };
            }
        }
    } else {
        normalize_barriers(kinds);
    }
}

/// Shared propcheck configuration for this suite: the engine runs 4
/// full simulations per case, so the budget is small, and failing case
/// seeds persist next to the suite (replacing the old
/// `proptest-regressions` artifact).
fn engine_config() -> Config {
    Config::default()
        .with_cases(12)
        .regressions_file("tests/prop_engine.propcheck-seeds")
}

/// Body of `prop_random_workloads_run_sound`, factored out so the
/// migrated regression case below replays the exact same invariants.
fn sound_invariants(mut kinds: Vec<ThreadKind>, vcpus: u32, seed: u64) -> Result<(), String> {
    make_runnable(&mut kinds);
    let mut results = Vec::new();
    for mode in [TickMode::Periodic, TickMode::DynticksIdle, TickMode::FullDynticks, TickMode::Paratick] {
        let m = Engine::run(scenario(&kinds, vcpus, mode, seed)).unwrap();
        // Completion.
        prop_assert!(m.per_vm[0].finished_at.is_some(), "{mode}: deadlock");
        // Conservation: busy + idle == accounted total (collect()
        // already asserts per-pCPU ledger == frontier).
        let busy = m.system.cycles.busy().as_nanos();
        let idle = m.system.cycles.get(paratick_vmm::CycleCategory::Idle).as_nanos();
        prop_assert_eq!(m.system.cycles.total().as_nanos(), busy + idle);
        results.push((mode, m));
    }
    let timer = |mode: TickMode| {
        results.iter().find(|(m, _)| *m == mode).unwrap().1.timer_exits()
    };
    // §4.2 dominance.
    prop_assert!(
        timer(TickMode::Paratick) <= timer(TickMode::DynticksIdle),
        "paratick {} > dynticks {}",
        timer(TickMode::Paratick),
        timer(TickMode::DynticksIdle)
    );
    // Guest work is mode-invariant (within rounding).
    let works: Vec<f64> = results
        .iter()
        .map(|(_, m)| m.system.cycles.get(paratick_vmm::CycleCategory::GuestWork).as_nanos() as f64)
        .collect();
    let max = works.iter().cloned().fold(0.0, f64::max);
    let min = works.iter().cloned().fold(f64::INFINITY, f64::min);
    prop_assert!(max > 0.0);
    // Budgets are mode-independent; the residual slack is one
    // jittered critical section per lock thread (consumed past the
    // budget's end) plus the end-of-run segment flush.
    prop_assert!((max - min) / max < 0.03, "guest work varies: {works:?}");
    Ok(())
}

propcheck! {
    #![propcheck_config(engine_config())]

    /// Any random workload completes (no deadlock), conserves cycles,
    /// and paratick never takes more timer exits than dynticks.
    fn prop_random_workloads_run_sound(
        kinds in collection::vec(thread_kind(), 1..6),
        vcpus in 1u32..5,
        seed in 0u64..1_000
    ) {
        sound_invariants(kinds, vcpus, seed)?;
    }

    /// Determinism across the engine: same scenario, same seed, same
    /// metrics — for arbitrary compositions.
    fn prop_deterministic_replay(
        mut kinds in collection::vec(thread_kind(), 1..5),
        seed in 0u64..1_000
    ) {
        make_runnable(&mut kinds);
        let a = Engine::run(scenario(&kinds, 2, TickMode::Paratick, seed)).unwrap();
        let b = Engine::run(scenario(&kinds, 2, TickMode::Paratick, seed)).unwrap();
        prop_assert_eq!(a.total_exits(), b.total_exits());
        prop_assert_eq!(a.events_dispatched, b.events_dispatched);
        prop_assert_eq!(a.execution_time(), b.execution_time());
        prop_assert_eq!(
            a.busy_cycles().get(),
            b.busy_cycles().get()
        );
    }
}

/// The counterexample encoded in the retired
/// `tests/prop_engine.proptest-regressions` artifact, migrated to an
/// explicit always-run case: an I/O thread plus a lock thread on 2
/// vCPUs at seed 273 once violated the soundness invariants.
#[test]
fn regression_io_plus_lock_vcpus2_seed273() {
    let kinds = vec![
        ThreadKind::Io { ops: 19, block_kb: 1 },
        ThreadKind::Lock { work_us: 758, grain_us: 38, cs_us: 11 },
    ];
    if let Err(msg) = sound_invariants(kinds, 2, 273) {
        panic!("migrated regression case failed: {msg}");
    }
}

/// Budget canary: this suite's propcheck configuration really executes
/// generated cases (guards against regressing to a swallowed-body
/// stub). Counts through the same `thread_kind()` strategy the real
/// properties draw from, without paying for engine runs.
#[test]
fn prop_suite_executes_generated_cases() {
    let budget = engine_config().effective_cases();
    let ran = std::cell::Cell::new(0u32);
    check(
        env!("CARGO_MANIFEST_DIR"),
        "engine_budget_canary",
        &engine_config(),
        &(collection::vec(thread_kind(), 1..6), 1u32..5, 0u64..1_000),
        |(kinds, vcpus, seed)| {
            assert!(!kinds.is_empty() && kinds.len() < 6);
            assert!((1..5).contains(&vcpus));
            assert!(seed < 1_000);
            ran.set(ran.get() + 1);
            Ok(())
        },
    )
    .expect("trivially true");
    assert!(ran.get() >= budget, "only {} of {budget} cases ran", ran.get());
    assert!(cases_executed("engine_budget_canary") >= budget as u64);
}

// ---------------------------------------------------------------------
// Fault-plan determinism. Faults are first-class sim events drawn from a
// dedicated rng fork, so a (seed, FaultConfig) pair fully determines the
// run: the raw event stream must replay byte-for-byte, and the injected
// chaos must never break an audited invariant.

use paratick_vmm::CollectSink;

const ALL_MODES: [TickMode; 4] = [
    TickMode::Periodic,
    TickMode::DynticksIdle,
    TickMode::FullDynticks,
    TickMode::Paratick,
];

fn faulted_scenario(mode: TickMode, seed: u64) -> Scenario {
    let kinds = [
        ThreadKind::Compute {
            work_us: 3_000,
            grain_us: 100,
        },
        ThreadKind::Sleeper {
            period_us: 800,
            wakeups: 10,
        },
        ThreadKind::Io {
            ops: 20,
            block_kb: 8,
        },
    ];
    scenario(&kinds, 2, mode, seed).faults(FaultConfig::campaign())
}

/// Run a faulted scenario and render its full event stream as text —
/// timestamps plus Debug of every event, the strongest equality we can
/// assert without serde.
fn faulted_stream(mode: TickMode, seed: u64) -> (String, RunMetrics) {
    let mut e = Engine::new(faulted_scenario(mode, seed)).unwrap();
    let (sink, events) = CollectSink::new();
    e.attach_sink(Box::new(sink));
    let m = e.run_to_completion().unwrap();
    let stream = events
        .borrow()
        .iter()
        .map(|(t, ev)| format!("{} {ev:?}\n", t.as_nanos()))
        .collect::<String>();
    (stream, m)
}

/// Identical seed + identical FaultPlan ⇒ byte-identical event stream
/// and equal metrics, in every tick mode.
#[test]
fn fault_plan_replays_byte_identically() {
    for mode in ALL_MODES {
        for seed in [0u64, 17, 911] {
            let (sa, ma) = faulted_stream(mode, seed);
            let (sb, mb) = faulted_stream(mode, seed);
            assert!(!sa.is_empty(), "{mode}/{seed}: empty stream");
            assert_eq!(sa, sb, "{mode}/{seed}: streams diverge");
            assert_eq!(ma.total_exits(), mb.total_exits());
            assert_eq!(ma.events_dispatched, mb.events_dispatched);
            assert_eq!(ma.execution_time(), mb.execution_time());
            assert_eq!(ma.faults.total_injected(), mb.faults.total_injected());
            assert_eq!(ma.faults.injected, mb.faults.injected);
        }
    }
}

/// A different seed must actually change the fault schedule (otherwise
/// the replay test above proves nothing).
#[test]
fn fault_plan_seed_matters() {
    let a = Engine::run(faulted_scenario(TickMode::Paratick, 3)).unwrap();
    let b = Engine::run(faulted_scenario(TickMode::Paratick, 4)).unwrap();
    assert!(a.faults.total_injected() > 0, "campaign injected nothing");
    assert_ne!(
        (a.events_dispatched, a.faults.injected),
        (b.events_dispatched, b.faults.injected),
        "different seeds produced identical fault schedules"
    );
}

/// The full default campaign — every fault kind at once — completes and
/// stays auditor-clean in all four tick modes.
#[test]
fn fault_campaign_is_audit_clean_in_all_modes() {
    for mode in ALL_MODES {
        for seed in [1u64, 23] {
            let m = Engine::run(faulted_scenario(mode, seed))
                .unwrap_or_else(|e| panic!("{mode}/{seed}: {e}"));
            assert!(
                m.per_vm[0].finished_at.is_some(),
                "{mode}/{seed}: did not finish"
            );
            assert!(
                m.audit.is_clean(),
                "{mode}/{seed}: violations {:?}",
                m.audit.violations
            );
            assert!(m.audit.events_checked > 0);
        }
    }
}
