//! Seed-stream independence: the properties the replication harness
//! (`paratick-lab`) relies on, checked against the real engine.
//!
//! * [`seed_stream`] derives per-replicate seeds that are injective in
//!   the replicate index and independent across bases;
//! * distinct replicate seeds produce *distinct but deterministic*
//!   [`RunMetrics`] for a seed-sensitive scenario;
//! * identical seeds produce byte-identical cached artifacts — the
//!   cache key folds the seed in, so replicate memoization can never
//!   alias two replicates or miss a repeat of one.
//!
//! The propcheck blocks execute the seed-stream properties over
//! generated inputs; the plain `#[test]`s cover the engine- and
//! cache-level halves, which are too expensive to run per generated
//! case.

use paratick::cache::{CacheOutcome, RunCache};
use paratick::prelude::*;
use paratick_sim::propcheck::prelude::*;
use paratick_sim::rng::seed_stream;
use paratick_workloads::parsec;
use std::collections::HashSet;

/// A seed-sensitive scenario: parallel dedup's sync jitter moves exits
/// and exec time with the seed (single-threaded compute cells don't —
/// their total work budget is fixed).
fn scenario(seed: u64) -> Scenario {
    let profile = *parsec::profile("dedup").unwrap();
    Scenario::new(HostConfig::default())
        .vm(
            VmConfig::small_vm().mode(TickMode::Paratick),
            parsec::workload(&profile, 2, 0.05),
        )
        .seed(seed)
}

/// The metric fingerprint replicate statistics are built from.
fn fingerprint(m: &RunMetrics) -> (u64, u64, u64, u64) {
    (
        m.total_exits(),
        m.timer_exits(),
        m.execution_time().as_nanos(),
        m.events_dispatched,
    )
}

#[test]
fn seed_stream_is_injective_over_replicate_indices() {
    for base in [0u64, 1, 0x5EED_0001, u64::MAX] {
        let seeds: Vec<u64> = (0..1000).map(|r| seed_stream(base, r)).collect();
        let distinct: HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(distinct.len(), seeds.len(), "collision under base {base:#x}");
        // Deterministic: the same (base, index) always maps to the same
        // seed.
        assert_eq!(seeds[7], seed_stream(base, 7));
    }
}

#[test]
fn distinct_seeds_give_distinct_but_deterministic_metrics() {
    let prints: Vec<_> = (0..4)
        .map(|r| {
            let seed = seed_stream(0x5EED_0001, r);
            let a = fingerprint(&Engine::run(scenario(seed)).unwrap());
            let b = fingerprint(&Engine::run(scenario(seed)).unwrap());
            assert_eq!(a, b, "replicate {r} is not deterministic");
            a
        })
        .collect();
    let distinct: HashSet<_> = prints.iter().collect();
    assert!(
        distinct.len() > 1,
        "all replicates produced identical metrics: {prints:?}"
    );
}

#[test]
fn identical_seeds_give_byte_identical_cached_artifacts() {
    let dir = std::env::temp_dir().join(format!("paratick-repl-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = RunCache::new(&dir);

    let seed = seed_stream(0x5EED_0001, 3);
    let key = RunCache::key(&scenario(seed));
    let (_, first) = cache.run(scenario(seed)).unwrap();
    assert_eq!(first, CacheOutcome::Miss);

    // The artifact exists on disk; capture its exact bytes.
    let path = dir.join(&key[..2]).join(format!("{key}.json"));
    let bytes = std::fs::read(&path).unwrap();

    // A repeat of the same seed is a pure replay...
    let (_, second) = cache.run(scenario(seed)).unwrap();
    assert_eq!(second, CacheOutcome::Hit);
    assert_eq!(std::fs::read(&path).unwrap(), bytes, "artifact rewritten");

    // ...and re-simulating into a fresh cache reproduces the artifact's
    // entire simulated payload byte for byte. Only the engine's
    // wall-clock self-profile may differ — it measures the host, not
    // the simulation — so it is stripped before comparing.
    let dir2 = dir.join("fresh");
    let cache2 = RunCache::new(&dir2);
    let (_, outcome) = cache2.run(scenario(seed)).unwrap();
    assert_eq!(outcome, CacheOutcome::Miss);
    let bytes2 = std::fs::read(dir2.join(&key[..2]).join(format!("{key}.json"))).unwrap();
    assert_eq!(
        strip_wall_profile(&bytes2),
        strip_wall_profile(&bytes),
        "identical seeds diverged"
    );

    // A different replicate seed lands under a different key entirely.
    let other = seed_stream(0x5EED_0001, 4);
    assert_ne!(RunCache::key(&scenario(other)), key);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Canonicalize a cached artifact for comparison: drop the `profile`
/// object (host wall-clock measurements), keep every simulated field.
fn strip_wall_profile(bytes: &[u8]) -> String {
    let doc = paratick_sim::Json::parse(std::str::from_utf8(bytes).unwrap()).unwrap();
    fn strip(v: paratick_sim::Json) -> paratick_sim::Json {
        match v {
            paratick_sim::Json::Obj(pairs) => paratick_sim::Json::Obj(
                pairs
                    .into_iter()
                    .filter(|(k, _)| k != "profile")
                    .map(|(k, v)| (k, strip(v)))
                    .collect(),
            ),
            paratick_sim::Json::Arr(items) => {
                paratick_sim::Json::Arr(items.into_iter().map(strip).collect())
            }
            other => other,
        }
    }
    strip(doc).to_string_pretty()
}

propcheck! {
    /// Property form of the injectivity test, over arbitrary bases
    /// (the plain test above pins a few named bases).
    fn prop_seed_stream_injective(base in any::<u64>(), a in 0u64..4096, b in 0u64..4096) {
        if a != b {
            prop_assert_ne!(seed_stream(base, a), seed_stream(base, b));
        }
        prop_assert_eq!(seed_stream(base, a), seed_stream(base, a));
    }

    /// Property form of seed-stream base independence.
    fn prop_seed_stream_bases_differ(base in any::<u64>(), r in 0u64..4096) {
        prop_assert_ne!(seed_stream(base, r), seed_stream(base ^ 1, r));
    }
}

/// Budget canary: this suite's propcheck configuration really executes
/// generated cases (guards against regressing to a swallowed-body
/// stub).
#[test]
fn prop_suite_executes_generated_cases() {
    let budget = Config::default().effective_cases();
    let ran = std::cell::Cell::new(0u32);
    check(
        env!("CARGO_MANIFEST_DIR"),
        "replication_budget_canary",
        &Config::default(),
        &(any::<u64>(), 0u64..4096),
        |(_base, _r)| {
            ran.set(ran.get() + 1);
            Ok(())
        },
    )
    .expect("trivially true");
    assert!(ran.get() >= budget, "only {} of {budget} cases ran", ran.get());
    assert!(cases_executed("replication_budget_canary") >= budget as u64);
}
