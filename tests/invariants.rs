//! Cross-crate invariants of the full system simulation.

use paratick::prelude::*;
use paratick_suite::{idle_vms, tiny_fio, tiny_parsec};

/// Same scenario + same seed => bit-identical metrics.
#[test]
fn determinism_bit_for_bit() {
    for mode in [TickMode::Periodic, TickMode::DynticksIdle, TickMode::Paratick] {
        let a = Engine::run(tiny_parsec("dedup", 4, mode, 77)).unwrap();
        let b = Engine::run(tiny_parsec("dedup", 4, mode, 77)).unwrap();
        assert_eq!(a.total_exits(), b.total_exits(), "{mode}: exits differ");
        assert_eq!(
            a.busy_cycles().get(),
            b.busy_cycles().get(),
            "{mode}: cycles differ"
        );
        assert_eq!(
            a.execution_time(),
            b.execution_time(),
            "{mode}: exec time differs"
        );
        assert_eq!(
            a.events_dispatched, b.events_dispatched,
            "{mode}: event counts differ"
        );
    }
}

/// Different seeds produce different (but valid) runs.
#[test]
fn seeds_matter() {
    let a = Engine::run(tiny_parsec("dedup", 4, TickMode::DynticksIdle, 1)).unwrap();
    let b = Engine::run(tiny_parsec("dedup", 4, TickMode::DynticksIdle, 2)).unwrap();
    assert_ne!(
        (a.total_exits(), a.events_dispatched),
        (b.total_exits(), b.events_dispatched)
    );
}

/// The workload's useful compute is identical across tick modes: the
/// modes differ only in overhead. (GuestWork cycles may differ by a
/// sliver because pollution-vs-work splitting truncates at run end.)
#[test]
fn guest_work_invariant_across_modes() {
    let mut work = Vec::new();
    for mode in [TickMode::Periodic, TickMode::DynticksIdle, TickMode::Paratick] {
        let m = Engine::run(tiny_parsec("swaptions", 2, mode, 5)).unwrap();
        work.push(
            m.system
                .cycles
                .get(paratick_vmm::CycleCategory::GuestWork)
                .as_nanos() as f64,
        );
    }
    let max = work.iter().cloned().fold(0.0, f64::max);
    let min = work.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        (max - min) / max < 0.001,
        "guest work varies across modes: {work:?}"
    );
}

/// The paper's §4.2 guarantee: paratick never induces more timer-related
/// exits than a tickless kernel — on any workload.
#[test]
fn paratick_never_worse_than_dynticks() {
    let cases: Vec<(&str, usize)> = vec![
        ("swaptions", 1),
        ("dedup", 1),
        ("streamcluster", 4),
        ("fluidanimate", 4),
        ("x264", 8),
    ];
    for (name, threads) in cases {
        for seed in [1, 2, 3] {
            let van = Engine::run(tiny_parsec(name, threads, TickMode::DynticksIdle, seed)).unwrap();
            let par = Engine::run(tiny_parsec(name, threads, TickMode::Paratick, seed)).unwrap();
            assert!(
                par.timer_exits() <= van.timer_exits(),
                "{name}/{threads}t seed{seed}: paratick {} > dynticks {}",
                par.timer_exits(),
                van.timer_exits()
            );
        }
    }
    // And on I/O workloads.
    let van = Engine::run(tiny_fio(TickMode::DynticksIdle, 9)).unwrap();
    let par = Engine::run(tiny_fio(TickMode::Paratick, 9)).unwrap();
    assert!(par.timer_exits() <= van.timer_exits());
}

/// Cycle conservation: `SystemStats::collect` verifies per-pCPU ledgers
/// internally (panics on violation); this test exercises it across all
/// three modes and an overcommitted host.
#[test]
fn cycle_conservation_holds() {
    for mode in [TickMode::Periodic, TickMode::DynticksIdle, TickMode::Paratick] {
        let m = Engine::run(tiny_parsec("ferret", 4, mode, 3)).unwrap();
        // Busy + idle == total accounted.
        let busy = m.system.cycles.busy().as_nanos();
        let idle = m
            .system
            .cycles
            .get(paratick_vmm::CycleCategory::Idle)
            .as_nanos();
        assert_eq!(m.system.cycles.total().as_nanos(), busy + idle);
        assert!(busy > 0);
    }
    // Overcommitted: 2 VMs x 4 vCPUs on 2 pCPUs.
    let mut s = Scenario::new(HostConfig::small(2)).until(RunUntil::Time(SimTime::from_millis(200)));
    for i in 0..2 {
        s = s.vm(
            VmConfig::with_vcpus(4)
                .mode(TickMode::Periodic)
                .spanning(1),
            paratick_workloads::parsec::workload(
                paratick_workloads::parsec::profile("canneal").unwrap(),
                4,
                0.02,
            ),
        );
        let _ = i;
    }
    let m = Engine::run(s).unwrap();
    assert!(m.total_exits() > 0);
}

/// Tick liveness: a busy guest receives its scheduler ticks in every
/// mode — at roughly the configured rate.
#[test]
fn busy_guest_receives_ticks() {
    use paratick_workloads::{ComputeThread, ThreadModel, VmWorkload};
    for mode in [TickMode::Periodic, TickMode::DynticksIdle, TickMode::Paratick] {
        let threads: Vec<Box<dyn ThreadModel>> = vec![Box::new(ComputeThread::new(
            "spin",
            SimDuration::from_millis(400),
            SimDuration::from_millis(1),
            0.0,
        ))];
        let m = Engine::run(
            Scenario::new(HostConfig::small(1))
                .vm(
                    VmConfig::with_vcpus(1).mode(mode),
                    VmWorkload {
                        name: "spin".into(),
                        threads,
                        num_locks: 1,
                        num_barriers: 0,
                    },
                )
                .seed(11),
        ).unwrap();
        // 400 ms at 250 Hz = ~100 ticks. Periodic/dynticks deliver them
        // as timer interrupts; paratick as virtual ticks.
        let delivered = match mode {
            TickMode::Paratick => m.system.virtual_ticks,
            _ => m.system.exits.get(ExitReason::PreemptionTimer),
        };
        assert!(
            (70..=130).contains(&delivered),
            "{mode}: {delivered} ticks delivered for ~100 expected"
        );
    }
}

/// Idle VMs: dynticks and paratick leave them fully quiescent; periodic
/// keeps waking every vCPU at the tick rate (§3.1 vs §3.2, Table 1).
#[test]
fn idle_vm_tick_behaviour() {
    let periodic = Engine::run(idle_vms(1, 4, TickMode::Periodic, 2)).unwrap();
    let dynticks = Engine::run(idle_vms(1, 4, TickMode::DynticksIdle, 2)).unwrap();
    let paratick = Engine::run(idle_vms(1, 4, TickMode::Paratick, 2)).unwrap();

    // Periodic: 4 vCPUs x 250 Hz x 2 s = 2000 tick wakeups (plus boot).
    assert!(
        (1900..2300).contains(&periodic.system.wakeups),
        "periodic wakeups = {}",
        periodic.system.wakeups
    );
    assert!(periodic.timer_exits() >= 1900);

    // Dynticks/paratick: a handful of boot-time events at most.
    assert!(dynticks.system.wakeups < 20, "{}", dynticks.system.wakeups);
    assert!(paratick.system.wakeups < 20, "{}", paratick.system.wakeups);
    assert!(dynticks.timer_exits() < 20);
    assert!(paratick.timer_exits() < 20);
}

/// Execution time is reported and finite for workload runs, and equals
/// the horizon for steady-state runs.
#[test]
fn execution_time_semantics() {
    let m = Engine::run(tiny_parsec("raytrace", 1, TickMode::DynticksIdle, 4)).unwrap();
    assert!(m.execution_time() > SimDuration::ZERO);
    assert!(m.execution_time() < SimDuration::from_secs(60));

    let h = Engine::run(idle_vms(1, 2, TickMode::DynticksIdle, 3)).unwrap();
    assert_eq!(h.execution_time(), SimDuration::from_secs(3));
}
