//! Fault-injection campaigns: the engine must survive deterministic
//! timer-path faults in every tick mode without panicking, degrade
//! through the documented ladder (TSC-deadline → LAPIC oneshot,
//! paratick → dynticks-idle), and keep the invariant auditor clean.

use paratick::prelude::*;
use paratick_suite::{idle_vms, tiny_parsec};
use paratick_vmm::CollectSink;

const MODES: [TickMode; 4] = [
    TickMode::Periodic,
    TickMode::DynticksIdle,
    TickMode::FullDynticks,
    TickMode::Paratick,
];

/// The issue's acceptance campaign: lost timer IRQs plus preemption
/// storms, seeded, over a real workload.
fn campaign() -> FaultConfig {
    FaultConfig::off()
        .with(FaultKind::LostTimerIrq, 2_000.0)
        .with(FaultKind::PreemptionStorm, 100.0)
}

/// Lost IRQs + preemption storms: every tick mode completes the
/// workload (no panic, no deadlock) and the auditor stays clean — the
/// watchdog re-delivery path keeps the timer lifecycle consistent.
#[test]
fn lost_irq_storm_campaign_survives_all_modes() {
    for mode in MODES {
        let s = tiny_parsec("swaptions", 2, mode, 42).faults(campaign());
        let m = Engine::run(s).unwrap_or_else(|e| panic!("{mode}: {e}"));
        assert!(
            m.per_vm[0].finished_at.is_some(),
            "{mode}: workload did not finish under faults"
        );
        assert!(
            m.audit.is_clean(),
            "{mode}: audit violations under faults: {:?}",
            m.audit.violations
        );
        assert!(
            m.faults.total_injected() > 0,
            "{mode}: campaign injected nothing"
        );
    }
}

/// An idle periodic guest keeps a deadline armed at all times, so a
/// high lost-IRQ rate must drive the full degradation ladder: watchdog
/// re-deliveries first, then the LAPIC-oneshot fallback once a vCPU
/// crosses the fault threshold — all visible in the event stream.
#[test]
fn lost_irqs_demote_to_lapic_oneshot() {
    let s = idle_vms(1, 2, TickMode::Periodic, 2)
        .faults(FaultConfig::off().with(FaultKind::LostTimerIrq, 500.0));
    let mut e = Engine::new(s).unwrap();
    let (sink, events) = CollectSink::new();
    e.attach_sink(Box::new(sink));
    let m = e.run_to_completion().unwrap();

    assert!(m.audit.is_clean(), "{:?}", m.audit.violations);
    assert!(
        m.faults.injected[FaultKind::LostTimerIrq.index()] > 0,
        "no lost IRQs injected"
    );
    assert!(
        m.faults.watchdog_recoveries > 0,
        "watchdog never re-delivered a lost deadline: {:?}",
        m.faults
    );
    assert!(
        m.faults.oneshot_fallbacks > 0,
        "no vCPU fell back to the LAPIC oneshot backend: {:?}",
        m.faults
    );

    let events = events.borrow();
    let has = |k: EventKind| events.iter().any(|(_, ev)| ev.kind() == k);
    assert!(has(EventKind::FaultInjected), "FaultInjected not emitted");
    assert!(
        has(EventKind::WatchdogRecovery),
        "WatchdogRecovery not emitted"
    );
    assert!(has(EventKind::TimerFallback), "TimerFallback not emitted");

    // The demoted vCPU keeps ticking: LAPIC-oneshot programming shows
    // up as ApicTimerWrite exits.
    assert!(
        m.system.exits.get(ExitReason::ApicTimerWrite) > 0,
        "no LAPIC oneshot programming after the fallback"
    );
}

/// Transient hypercall failures within the retry budget: paratick
/// retries with backoff, eventually declares, and never degrades.
#[test]
fn hypercall_retry_recovers_within_budget() {
    // Defaults: first 2 attempts fail, 4 attempts allowed.
    let s = tiny_parsec("swaptions", 2, TickMode::Paratick, 7)
        .faults(FaultConfig::off().with(FaultKind::HypercallFail, 1.0));
    let m = Engine::run(s).unwrap();
    assert!(m.audit.is_clean(), "{:?}", m.audit.violations);
    assert!(m.faults.hypercall_retries > 0, "no retries: {:?}", m.faults);
    assert_eq!(
        m.faults.paravirt_fallbacks, 0,
        "degraded despite a sufficient retry budget"
    );
    // The declaration eventually lands: paratick still injects virtual
    // ticks instead of taking timer exits.
    assert!(m.system.virtual_ticks > 0, "paratick never engaged");
}

/// Hypercall failures past the retry budget: the guest falls back to
/// dynticks-idle and still completes (graceful, not wedged).
#[test]
fn hypercall_exhaustion_falls_back_to_dynticks() {
    let mut faults = FaultConfig::off().with(FaultKind::HypercallFail, 1.0);
    faults.hypercall_fail_first = 10; // beyond the 4-attempt budget
    let s = tiny_parsec("swaptions", 2, TickMode::Paratick, 7).faults(faults);
    let m = Engine::run(s).unwrap();
    assert!(m.audit.is_clean(), "{:?}", m.audit.violations);
    assert!(
        m.faults.paravirt_fallbacks > 0,
        "no dynticks fallback: {:?}",
        m.faults
    );
    assert!(m.per_vm[0].finished_at.is_some(), "fallback run wedged");
    assert_eq!(
        m.system.virtual_ticks, 0,
        "virtual ticks after a dynticks fallback"
    );
}

/// TSC drift, coalesced IRQs and exit-cost spikes: the soft fault
/// kinds perturb timing without breaking any invariant.
#[test]
fn soft_faults_stay_audit_clean() {
    for mode in MODES {
        let s = tiny_parsec("canneal", 2, mode, 11).faults(
            FaultConfig::off()
                .with(FaultKind::TscDrift, 500.0)
                .with(FaultKind::CoalescedTimerIrq, 500.0)
                .with(FaultKind::ExitCostSpike, 100.0),
        );
        let m = Engine::run(s).unwrap_or_else(|e| panic!("{mode}: {e}"));
        assert!(
            m.per_vm[0].finished_at.is_some(),
            "{mode}: did not finish under soft faults"
        );
        assert!(
            m.audit.is_clean(),
            "{mode}: audit violations: {:?}",
            m.audit.violations
        );
    }
}

/// Fault-free baseline: the always-on auditor reports zero violations
/// and zero fault activity in every mode.
#[test]
fn fault_free_baselines_are_audit_clean() {
    for mode in MODES {
        let m = Engine::run(tiny_parsec("swaptions", 2, mode, 5)).unwrap();
        assert!(
            m.audit.is_clean(),
            "{mode}: clean run has violations: {:?}",
            m.audit.violations
        );
        assert!(m.audit.events_checked > 0, "{mode}: auditor saw nothing");
        assert_eq!(m.faults.total_injected(), 0);
        assert_eq!(m.faults.watchdog_recoveries, 0);
        assert_eq!(m.faults.oneshot_fallbacks, 0);
    }
}

/// Enabling a fault campaign must not perturb the fault-free stream:
/// the fault plan draws from its own forked rng, so a zero-rate config
/// is byte-identical to no config at all.
#[test]
fn zero_rate_faults_do_not_perturb_runs() {
    let plain = Engine::run(tiny_parsec("swaptions", 2, TickMode::Paratick, 9)).unwrap();
    let zeroed = Engine::run(
        tiny_parsec("swaptions", 2, TickMode::Paratick, 9).faults(FaultConfig::off()),
    )
    .unwrap();
    assert_eq!(plain.total_exits(), zeroed.total_exits());
    assert_eq!(plain.events_dispatched, zeroed.events_dispatched);
    assert_eq!(plain.execution_time(), zeroed.execution_time());
}

/// A zero-pCPU host is a configuration error, not a panic.
#[test]
fn zero_pcpu_host_is_a_config_error() {
    let s = Scenario::new(HostConfig::small(0)).vm(
        VmConfig::with_vcpus(1),
        paratick_workloads::VmWorkload::idle("x"),
    );
    match Engine::run(s) {
        Err(SimError::Config(msg)) => assert!(msg.contains("zero pCPUs"), "{msg}"),
        other => panic!("expected Config error, got {other:?}"),
    }
}
